//! A configurable synchronous Gather-Apply-Scatter executor.
//!
//! PowerGraph, PowerLyra and GraphChi all process vertices with the same skeleton —
//! gather over all incoming edges, apply, scatter activation over outgoing edges —
//! and differ only in partitioning, which vertices they process each iteration, how
//! much replica-synchronisation traffic they generate and whether an I/O cost is
//! charged per iteration. [`GasEngine`] captures that skeleton; the per-system
//! modules configure it.

use slfe_cluster::{Cluster, ClusterConfig};
use slfe_core::{AggregationKind, GraphProgram, ProgramResult};
use slfe_graph::{Bitset, Degrees, Graph, VertexId};
use slfe_metrics::{
    Counters, ExecutionStats, IterationRecord, IterationTrace, Mode, PhaseBreakdown,
};
use slfe_partition::{ChunkingPartitioner, HashPartitioner, Partitioner};

/// Bytes carried by one replica-synchronisation / update message.
const UPDATE_MESSAGE_BYTES: u64 = 8;

/// How the executor charges communication for an edge whose endpoints live on
/// different nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationModel {
    /// Charge every remote gather edge and every remote scatter edge (PowerGraph's
    /// vertex-cut replica synchronisation on both phases).
    GatherAndScatter,
    /// Charge remote gather edges only for vertices whose in-degree exceeds the
    /// hybrid-cut threshold, plus every remote scatter edge (PowerLyra).
    HybridCut {
        /// In-degree above which a vertex is treated as "high degree".
        high_degree_threshold: usize,
    },
    /// Never charge messages (single-machine systems).
    None,
}

/// Which vertex placement strategy the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Gemini-style contiguous chunking.
    Chunking,
    /// Random (hash) placement, as PowerGraph/PowerLyra ingress does by default.
    Hash,
}

/// Static configuration of a GAS-style baseline.
#[derive(Debug, Clone)]
pub struct GasConfig {
    /// Engine name recorded in [`ExecutionStats`].
    pub name: &'static str,
    /// Vertex placement strategy.
    pub placement: Placement,
    /// Communication model.
    pub replication: ReplicationModel,
    /// If `true`, min/max programs only process vertices activated by a neighbour's
    /// change (frontier semantics); if `false`, every vertex is processed every
    /// iteration (GraphChi's streaming model). Arithmetic programs always process
    /// every vertex.
    pub frontier: bool,
    /// Fixed per-processed-vertex overhead in counted work units (replica
    /// activation, apply barriers, ...).
    pub per_vertex_overhead: u64,
    /// Simulated I/O seconds charged per iteration per edge byte streamed from disk
    /// (GraphChi); zero for in-memory systems.
    pub io_seconds_per_edge: f64,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Convergence tolerance for arithmetic programs.
    pub tolerance: f64,
    /// Simulated seconds per counted work unit (kept identical to the SLFE engine's
    /// default so runtimes are comparable).
    pub seconds_per_work_unit: f64,
}

impl GasConfig {
    /// Shared defaults; per-system modules override the distinguishing fields.
    pub fn base(name: &'static str) -> Self {
        Self {
            name,
            placement: Placement::Hash,
            replication: ReplicationModel::GatherAndScatter,
            frontier: true,
            per_vertex_overhead: 4,
            io_seconds_per_edge: 0.0,
            max_iterations: 200,
            tolerance: 1.0e-7,
            seconds_per_work_unit: 5.0e-9,
        }
    }
}

/// The configurable GAS executor.
#[derive(Debug)]
pub struct GasEngine<'g> {
    graph: &'g Graph,
    cluster: Cluster,
    config: GasConfig,
    degrees: Degrees,
}

impl<'g> GasEngine<'g> {
    /// Build a GAS engine over `graph` with `num_nodes` nodes and `workers_per_node`
    /// workers.
    pub fn build(graph: &'g Graph, cluster_config: ClusterConfig, config: GasConfig) -> Self {
        let partitioning = match config.placement {
            Placement::Chunking => {
                ChunkingPartitioner::default().partition(graph, cluster_config.num_nodes)
            }
            Placement::Hash => HashPartitioner::new().partition(graph, cluster_config.num_nodes),
        };
        let cluster = Cluster::with_partitioning(partitioning, cluster_config);
        Self {
            graph,
            cluster,
            config,
            degrees: Degrees::of(graph),
        }
    }

    /// The underlying cluster (for communication statistics).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The engine configuration.
    pub fn config(&self) -> &GasConfig {
        &self.config
    }

    /// Execute `program` to convergence or the iteration cap.
    pub fn run<P: GraphProgram>(&self, program: &P) -> ProgramResult<P::Value> {
        self.cluster.reset_run_state();
        let graph = self.graph;
        let n = graph.num_vertices();
        let arithmetic = program.aggregation() == AggregationKind::Arithmetic;
        let process_everyone = arithmetic || !self.config.frontier;

        let mut values: Vec<P::Value> = graph
            .vertices()
            .map(|v| program.initial_value(v, &self.degrees))
            .collect();
        let mut active =
            Bitset::from_fn(n, |v| program.initial_active(v as VertexId, &self.degrees));
        let mut active_count = active.count_ones();
        let mut last_changed_iter = vec![0u32; n];

        // Buffers hoisted out of the iteration loop and reused.
        let mut prev_values = values.clone();
        let mut next_active = Bitset::new(n);

        let num_nodes = self.cluster.num_nodes();
        let workers = self.cluster.config().workers_per_node;
        let mut per_node_worker_work = vec![vec![0u64; workers]; num_nodes];

        let mut trace = IterationTrace::new();
        let mut totals = Counters::zero();
        let mut simulated_exec_seconds = 0.0f64;
        let mut converged = false;
        let mut iterations_run = 0u32;

        for iter in 1..=self.config.max_iterations {
            if !process_everyone && active_count == 0 {
                converged = true;
                break;
            }
            iterations_run = iter;
            prev_values.copy_from_slice(&values);
            next_active.clear();
            let comm_before = self.cluster.comm_stats();
            let mut iter_counters = Counters::zero();
            let mut changed_this_iter = 0usize;
            let mut iteration_makespan = 0u64;

            for node in self.cluster.nodes() {
                let owned = self.cluster.vertices_of(node);
                let scheduler = self.cluster.node_scheduler();
                let num_chunks = scheduler.num_chunks(owned.len());
                let mut chunk_costs = vec![0u64; num_chunks];

                for (chunk, chunk_cost) in chunk_costs.iter_mut().enumerate() {
                    let mut chunk_work = 0u64;
                    for idx in scheduler.chunk_range(chunk, owned.len()) {
                        let v = owned[idx];
                        if !process_everyone && !active.get(v as usize) {
                            continue;
                        }
                        chunk_work += self.process_vertex(
                            program,
                            v,
                            iter,
                            arithmetic,
                            &prev_values,
                            &mut values,
                            &mut next_active,
                            &mut changed_this_iter,
                            &mut last_changed_iter,
                            &mut iter_counters,
                        );
                    }
                    *chunk_cost = chunk_work;
                }

                let outcome = scheduler.simulate(
                    owned.len(),
                    slfe_cluster::SchedulingPolicy::WorkStealing,
                    |c| chunk_costs[c],
                );
                for (w, load) in per_node_worker_work[node]
                    .iter_mut()
                    .zip(&outcome.per_worker_work)
                {
                    *w += load;
                }
                self.cluster.record_node_work(node, outcome.total_work);
                iteration_makespan = iteration_makespan.max(outcome.makespan());
            }

            let comm_after = self.cluster.comm_stats();
            iter_counters.messages_sent = comm_after.messages - comm_before.messages;
            iter_counters.bytes_sent = comm_after.bytes - comm_before.bytes;

            let comm_seconds = self
                .cluster
                .config()
                .comm_cost
                .seconds(iter_counters.messages_sent, iter_counters.bytes_sent);
            let io_seconds = self.config.io_seconds_per_edge
                * (graph.num_edges() as f64)
                * UPDATE_MESSAGE_BYTES as f64;
            let compute_seconds = iteration_makespan as f64 * self.config.seconds_per_work_unit;
            simulated_exec_seconds += compute_seconds + comm_seconds + io_seconds;

            totals += iter_counters;
            trace.push(IterationRecord {
                iteration: iter,
                // GAS gathers along incoming edges, which maps onto the pull mode in
                // the breakdown reports.
                mode: Mode::Pull,
                active_vertices: active_count,
                counters: iter_counters,
                seconds: compute_seconds + comm_seconds + io_seconds,
            });

            std::mem::swap(&mut active, &mut next_active);
            active_count = active.count_ones();

            // Engines that process every vertex every iteration (arithmetic apps,
            // and GraphChi's streaming model even for min/max apps) reach their
            // fixpoint when an iteration changes nothing.
            if process_everyone && changed_this_iter == 0 {
                converged = true;
                break;
            }
        }
        if !process_everyone && active_count == 0 {
            converged = true;
        }

        let mut stats = ExecutionStats::new(self.config.name, program.name());
        stats.num_vertices = n;
        stats.num_edges = graph.num_edges();
        stats.num_nodes = num_nodes;
        stats.workers_per_node = workers;
        stats.iterations = iterations_run;
        stats.totals = totals;
        stats.phases = PhaseBreakdown {
            preprocessing_seconds: 0.0,
            execution_seconds: simulated_exec_seconds,
        };
        stats.trace = trace;
        stats.per_node_work = self.cluster.per_node_work();

        ProgramResult {
            values,
            stats,
            last_changed_iter,
            per_node_worker_work,
            converged,
        }
    }

    /// Gather-apply-scatter for one vertex; returns counted work.
    #[allow(clippy::too_many_arguments)]
    fn process_vertex<P: GraphProgram>(
        &self,
        program: &P,
        v: VertexId,
        iter: u32,
        arithmetic: bool,
        prev_values: &[P::Value],
        values: &mut [P::Value],
        next_active: &mut Bitset,
        changed_this_iter: &mut usize,
        last_changed_iter: &mut [u32],
        counters: &mut Counters,
    ) -> u64 {
        let idx = v as usize;
        let mut work = self.config.per_vertex_overhead;
        let owner = self.cluster.owner_of(v);
        let high_degree = match self.config.replication {
            ReplicationModel::HybridCut {
                high_degree_threshold,
            } => self.graph.in_degree(v) > high_degree_threshold,
            _ => false,
        };

        // Gather. Replica partial sums are aggregated per remote node before being
        // shipped (consecutive-owner de-duplication); with random (hash) placement
        // neighbouring sources rarely share an owner, so vertex-cut engines still
        // pay close to one message per remote in-edge — the replication-factor
        // penalty the hybrid cut was designed to reduce.
        let mut gathered = program.identity();
        let mut has_contribution = false;
        let mut last_remote_owner = usize::MAX;
        for (src, weight) in self.graph.in_edges(v) {
            work += 1;
            counters.edge_computations += 1;
            if let Some(c) = program.edge_contribution(src, prev_values[src as usize], weight) {
                gathered = program.combine(gathered, c);
                has_contribution = true;
            }
            let src_owner = self.cluster.owner_of(src);
            let remote = src_owner != owner && src_owner != last_remote_owner;
            let charge = match self.config.replication {
                ReplicationModel::GatherAndScatter => remote,
                ReplicationModel::HybridCut { .. } => remote && high_degree,
                ReplicationModel::None => false,
            };
            if charge {
                self.cluster
                    .record_update_message(src, v, UPDATE_MESSAGE_BYTES);
                last_remote_owner = src_owner;
            }
        }

        // Apply.
        let old = values[idx];
        let mut new = if has_contribution || arithmetic {
            program.apply(v, old, gathered)
        } else {
            old
        };
        if arithmetic {
            new = program.vertex_update(v, new, &self.degrees);
            work += 1;
        }
        let changed = program.changed(old, new, self.config.tolerance);
        if changed {
            values[idx] = new;
            counters.vertex_updates += 1;
            work += 1;
            last_changed_iter[idx] = iter;
            *changed_this_iter += 1;
        }

        // Scatter: activate out-neighbours (and synchronise their replicas) whenever
        // the vertex changed. This is the phase Gemini's push mode avoids for stable
        // vertices and SLFE removes altogether for redundant updates. The first
        // iteration always scatters so that initially-active seeds (e.g. the SSSP
        // root, whose apply does not change its own value) still activate their
        // neighbourhood.
        if changed || iter == 1 {
            for &dst in self.graph.out_neighbors(v) {
                work += 1;
                counters.edge_computations += 1;
                next_active.set(dst as usize);
                let remote = self.cluster.owner_of(dst) != owner;
                if remote && self.config.replication != ReplicationModel::None {
                    self.cluster
                        .record_update_message(v, dst, UPDATE_MESSAGE_BYTES);
                }
            }
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_core::{EngineConfig, SlfeEngine};
    use slfe_graph::generators;

    struct Sssp {
        root: VertexId,
    }
    impl GraphProgram for Sssp {
        type Value = f32;
        fn aggregation(&self) -> AggregationKind {
            AggregationKind::MinMax
        }
        fn name(&self) -> &'static str {
            "sssp"
        }
        fn initial_value(&self, v: VertexId, _d: &Degrees) -> f32 {
            if v == self.root {
                0.0
            } else {
                f32::INFINITY
            }
        }
        fn initial_active(&self, v: VertexId, _d: &Degrees) -> bool {
            v == self.root
        }
        fn identity(&self) -> f32 {
            f32::INFINITY
        }
        fn edge_contribution(&self, _s: VertexId, sv: f32, w: f32) -> Option<f32> {
            sv.is_finite().then_some(sv + w)
        }
        fn combine(&self, a: f32, b: f32) -> f32 {
            a.min(b)
        }
        fn apply(&self, _d: VertexId, old: f32, g: f32) -> f32 {
            old.min(g)
        }
    }

    #[test]
    fn gas_sssp_matches_slfe_values() {
        let g = generators::rmat(300, 2100, 0.57, 0.19, 0.19, 31);
        let program = Sssp { root: 0 };
        let gas = GasEngine::build(&g, ClusterConfig::new(4, 2), GasConfig::base("powergraph"));
        let slfe = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::without_rr());
        let a = gas.run(&program);
        let b = slfe.run(&program);
        for v in 0..g.num_vertices() {
            let (x, y) = (a.values[v], b.values[v]);
            assert!((x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-4);
        }
        assert!(a.converged);
    }

    #[test]
    fn gas_charges_more_messages_than_an_edge_cut_engine() {
        let g = generators::rmat(400, 3200, 0.57, 0.19, 0.19, 7);
        let program = Sssp { root: 0 };
        let gas = GasEngine::build(&g, ClusterConfig::new(8, 2), GasConfig::base("powergraph"));
        let slfe = SlfeEngine::build(&g, ClusterConfig::new(8, 2), EngineConfig::without_rr());
        let a = gas.run(&program);
        let b = slfe.run(&program);
        assert!(
            a.stats.totals.messages_sent > b.stats.totals.messages_sent / 2,
            "GAS should generate substantial replica traffic"
        );
    }

    #[test]
    fn hybrid_cut_sends_fewer_messages_than_full_replication() {
        let g = generators::rmat(400, 3200, 0.57, 0.19, 0.19, 13);
        let program = Sssp { root: 0 };
        let full = GasEngine::build(&g, ClusterConfig::new(8, 2), GasConfig::base("powergraph"));
        let hybrid_config = GasConfig {
            replication: ReplicationModel::HybridCut {
                high_degree_threshold: 16,
            },
            ..GasConfig::base("powerlyra")
        };
        let hybrid = GasEngine::build(&g, ClusterConfig::new(8, 2), hybrid_config);
        let a = full.run(&program);
        let b = hybrid.run(&program);
        assert!(b.stats.totals.messages_sent <= a.stats.totals.messages_sent);
    }

    #[test]
    fn io_cost_inflates_execution_time() {
        let g = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 3);
        let program = Sssp { root: 0 };
        let in_memory = GasEngine::build(&g, ClusterConfig::single_node(), GasConfig::base("x"));
        let mut io_config = GasConfig::base("graphchi");
        io_config.io_seconds_per_edge = 1.0e-6;
        io_config.replication = ReplicationModel::None;
        let out_of_core = GasEngine::build(&g, ClusterConfig::single_node(), io_config);
        let a = in_memory.run(&program);
        let b = out_of_core.run(&program);
        assert!(b.stats.phases.execution_seconds > a.stats.phases.execution_seconds);
    }
}
