/root/repo/target/debug/deps/slfe_metrics-103d158a2a656361.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

/root/repo/target/debug/deps/slfe_metrics-103d158a2a656361: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/imbalance.rs:
crates/metrics/src/report.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/trace.rs:
