/root/repo/target/debug/deps/slfe_apps-5264b5cfced680b4.d: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/cc.rs crates/apps/src/heat.rs crates/apps/src/numpaths.rs crates/apps/src/pagerank.rs crates/apps/src/registry.rs crates/apps/src/spmv.rs crates/apps/src/sssp.rs crates/apps/src/tunkrank.rs crates/apps/src/widestpath.rs

/root/repo/target/debug/deps/slfe_apps-5264b5cfced680b4: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/cc.rs crates/apps/src/heat.rs crates/apps/src/numpaths.rs crates/apps/src/pagerank.rs crates/apps/src/registry.rs crates/apps/src/spmv.rs crates/apps/src/sssp.rs crates/apps/src/tunkrank.rs crates/apps/src/widestpath.rs

crates/apps/src/lib.rs:
crates/apps/src/bfs.rs:
crates/apps/src/cc.rs:
crates/apps/src/heat.rs:
crates/apps/src/numpaths.rs:
crates/apps/src/pagerank.rs:
crates/apps/src/registry.rs:
crates/apps/src/spmv.rs:
crates/apps/src/sssp.rs:
crates/apps/src/tunkrank.rs:
crates/apps/src/widestpath.rs:
