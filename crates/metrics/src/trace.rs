//! Per-iteration execution traces.
//!
//! Figure 9 of the paper plots the number of computations per iteration with and
//! without redundancy reduction; Figure 4 needs to know how much time each iteration
//! spent in pull vs push mode. [`IterationTrace`] records both.

use crate::counters::Counters;

/// Direction-aware propagation mode used by an iteration (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Pull: every destination vertex gathers from its incoming neighbors.
    Pull,
    /// Push: active source vertices scatter along their outgoing edges.
    Push,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Pull => write!(f, "pull"),
            Mode::Push => write!(f, "push"),
        }
    }
}

/// One iteration's worth of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration number, starting at 1 to match the paper's plots.
    pub iteration: u32,
    /// Propagation mode the engine chose for this iteration.
    pub mode: Mode,
    /// Number of active vertices at the start of the iteration.
    pub active_vertices: usize,
    /// Work counters accumulated during the iteration.
    pub counters: Counters,
    /// Wall-clock seconds spent in the iteration.
    pub seconds: f64,
}

/// A full run's sequence of [`IterationRecord`]s.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct IterationTrace {
    records: Vec<IterationRecord>,
}

impl IterationTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one iteration's record.
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// All records in iteration order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The Figure 9 series: `(iteration, edge_computations)` pairs.
    pub fn computations_per_iteration(&self) -> Vec<(u32, u64)> {
        self.records
            .iter()
            .map(|r| (r.iteration, r.counters.edge_computations))
            .collect()
    }

    /// Total counters across all iterations.
    pub fn total(&self) -> Counters {
        self.records
            .iter()
            .fold(Counters::zero(), |acc, r| acc + r.counters)
    }

    /// Seconds spent in each mode, as `(pull_seconds, push_seconds)` (Figure 4).
    pub fn mode_seconds(&self) -> (f64, f64) {
        let mut pull = 0.0;
        let mut push = 0.0;
        for r in &self.records {
            match r.mode {
                Mode::Pull => pull += r.seconds,
                Mode::Push => push += r.seconds,
            }
        }
        (pull, push)
    }

    /// Edge computations spent in each mode, as `(pull, push)` — the counted-unit
    /// version of Figure 4, robust to timer resolution on fast proxy graphs.
    pub fn mode_computations(&self) -> (u64, u64) {
        let mut pull = 0;
        let mut push = 0;
        for r in &self.records {
            match r.mode {
                Mode::Pull => pull += r.counters.edge_computations,
                Mode::Push => push += r.counters.edge_computations,
            }
        }
        (pull, push)
    }

    /// Fraction of total mode time spent pulling, in `[0, 1]`; `None` when no time
    /// was recorded at all.
    pub fn pull_fraction(&self) -> Option<f64> {
        let (pull, push) = self.mode_seconds();
        let total = pull + push;
        if total > 0.0 {
            Some(pull / total)
        } else {
            let (pc, sc) = self.mode_computations();
            let total_c = pc + sc;
            if total_c == 0 {
                None
            } else {
                Some(pc as f64 / total_c as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(iter: u32, mode: Mode, comps: u64, secs: f64) -> IterationRecord {
        IterationRecord {
            iteration: iter,
            mode,
            active_vertices: 10,
            counters: Counters {
                edge_computations: comps,
                vertex_updates: comps / 2,
                ..Counters::zero()
            },
            seconds: secs,
        }
    }

    #[test]
    fn computations_series_follows_insert_order() {
        let mut t = IterationTrace::new();
        t.push(record(1, Mode::Push, 5, 0.1));
        t.push(record(2, Mode::Pull, 50, 0.5));
        t.push(record(3, Mode::Pull, 20, 0.2));
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.computations_per_iteration(),
            vec![(1, 5), (2, 50), (3, 20)]
        );
    }

    #[test]
    fn totals_sum_all_iterations() {
        let mut t = IterationTrace::new();
        t.push(record(1, Mode::Pull, 10, 0.0));
        t.push(record(2, Mode::Pull, 30, 0.0));
        let total = t.total();
        assert_eq!(total.edge_computations, 40);
        assert_eq!(total.vertex_updates, 20);
    }

    #[test]
    fn mode_breakdown_matches_figure4_semantics() {
        let mut t = IterationTrace::new();
        t.push(record(1, Mode::Push, 10, 1.0));
        t.push(record(2, Mode::Pull, 90, 8.0));
        t.push(record(3, Mode::Pull, 0, 1.0));
        let (pull_s, push_s) = t.mode_seconds();
        assert!((pull_s - 9.0).abs() < 1e-9);
        assert!((push_s - 1.0).abs() < 1e-9);
        assert!((t.pull_fraction().unwrap() - 0.9).abs() < 1e-9);
        assert_eq!(t.mode_computations(), (90, 10));
    }

    #[test]
    fn pull_fraction_falls_back_to_counted_units() {
        let mut t = IterationTrace::new();
        t.push(record(1, Mode::Push, 25, 0.0));
        t.push(record(2, Mode::Pull, 75, 0.0));
        assert!((t.pull_fraction().unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_has_no_pull_fraction() {
        let t = IterationTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.pull_fraction(), None);
        assert_eq!(t.total(), Counters::zero());
    }

    #[test]
    fn mode_display_strings() {
        assert_eq!(Mode::Pull.to_string(), "pull");
        assert_eq!(Mode::Push.to_string(), "push");
    }
}
