/root/repo/target/debug/deps/slfe-6b5f758d993d6e42.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libslfe-6b5f758d993d6e42.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
