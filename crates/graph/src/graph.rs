//! The immutable [`Graph`] type: CSR + CSC views over a directed weighted graph.

use crate::csr::Adjacency;
use crate::remap::IdRemap;
use crate::types::{Edge, EdgeWeight, VertexId};
use std::sync::Arc;

// `Graph::apply_batch` lives in `crate::delta`.

/// A directed, weighted graph with both outgoing (CSR) and incoming (CSC) adjacency.
///
/// Both directions are materialised because the SLFE computation model (paper §3.3)
/// switches between *push* over outgoing edges and *pull* over incoming edges at
/// runtime; the same is true of the Gemini and Ligra baselines.
///
/// Vertex ids come in two flavors. Every accessor on this type speaks
/// **physical** ids — the indices of the CSR/CSC arrays. Graphs built from an
/// edge list start with physical == *external* (client-visible) ids; a
/// [`Graph::remapped`] graph carries the cumulative [`IdRemap`] between the
/// two spaces, and serving layers translate at their API boundary via
/// [`Graph::to_physical`] / [`Graph::external_id`]. Adjacency lists are
/// always sorted by the **external** id of the neighbor (identity graphs get
/// that for free; a remap renames entries without reordering them), which is
/// what keeps order-sensitive float folds bit-identical across remaps.
#[derive(Debug, Clone)]
pub struct Graph {
    num_vertices: usize,
    out: Adjacency,
    incoming: Adjacency,
    /// Cumulative external→physical bijection; `None` means the two id
    /// spaces coincide (the common case, and the zero-cost fast path).
    /// Physical ids at or beyond the remap's length are external ids
    /// verbatim, so a graph grown by [`Graph::apply_batch`] keeps its remap.
    remap: Option<Arc<IdRemap>>,
    /// Flat edge list, materialised lazily: the delta-apply path builds graphs
    /// from patched adjacencies on the serving hot path, and copying an `O(E)`
    /// edge vector there just to back the rarely-used [`Graph::edges`] accessor
    /// would be pure overhead. `from_edges` seeds it eagerly (the vector already
    /// exists); `from_parts` leaves it to the first `edges()` call.
    edges: std::sync::OnceLock<Vec<Edge>>,
}

impl Graph {
    /// Construct a graph from an explicit vertex count and edge list.
    ///
    /// Panics if any edge references a vertex `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(
                (e.src as usize) < num_vertices && (e.dst as usize) < num_vertices,
                "edge ({}, {}) out of range for {} vertices",
                e.src,
                e.dst,
                num_vertices
            );
        }
        let out = Adjacency::outgoing(num_vertices, &edges);
        let incoming = Adjacency::incoming(num_vertices, &edges);
        let cell = std::sync::OnceLock::new();
        let _ = cell.set(edges);
        Self {
            num_vertices,
            out,
            incoming,
            remap: None,
            edges: cell,
        }
    }

    /// Assemble a graph from prebuilt adjacency structures (the delta-apply path).
    /// The edge list is derived from the CSR side on first use; its order is
    /// unspecified, as [`Graph::edges`] documents.
    pub(crate) fn from_parts(num_vertices: usize, out: Adjacency, incoming: Adjacency) -> Self {
        Self::from_parts_with_remap(num_vertices, out, incoming, None)
    }

    /// [`Graph::from_parts`] that also carries over a cumulative id remap
    /// (used by `apply_batch` so graph growth preserves the physical layout).
    pub(crate) fn from_parts_with_remap(
        num_vertices: usize,
        out: Adjacency,
        incoming: Adjacency,
        remap: Option<Arc<IdRemap>>,
    ) -> Self {
        debug_assert_eq!(out.num_vertices(), num_vertices);
        debug_assert_eq!(incoming.num_vertices(), num_vertices);
        debug_assert_eq!(out.num_edges(), incoming.num_edges());
        Self {
            num_vertices,
            out,
            incoming,
            remap,
            edges: std::sync::OnceLock::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Average out-degree (`|E| / |V|`), the figure the paper's Table 4 reports.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices as f64
        }
    }

    /// Iterate over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices as VertexId
    }

    /// The raw edge list (order unspecified), materialised from the CSR on
    /// first use for graphs built by the delta-apply path.
    pub fn edges(&self) -> &[Edge] {
        self.edges.get_or_init(|| {
            let mut edges = Vec::with_capacity(self.out.num_edges());
            for v in 0..self.num_vertices as VertexId {
                for (u, w) in self.out.neighbors_with_weights(v) {
                    edges.push(Edge::new(v, u, w));
                }
            }
            edges
        })
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.incoming.degree(v)
    }

    /// Outgoing neighbors of `v` (targets of edges leaving `v`), sorted.
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// Incoming neighbors of `v` (sources of edges entering `v`), sorted.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.incoming.neighbors(v)
    }

    /// Weights parallel to [`Self::out_neighbors`].
    pub fn out_weights(&self, v: VertexId) -> &[EdgeWeight] {
        self.out.weights(v)
    }

    /// Weights parallel to [`Self::in_neighbors`].
    pub fn in_weights(&self, v: VertexId) -> &[EdgeWeight] {
        self.incoming.weights(v)
    }

    /// `(neighbor, weight)` pairs over outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeWeight)> + '_ {
        self.out.neighbors_with_weights(v)
    }

    /// `(neighbor, weight)` pairs over incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeWeight)> + '_ {
        self.incoming.neighbors_with_weights(v)
    }

    /// `true` if the directed edge `src -> dst` exists (physical ids).
    pub fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        match &self.remap {
            // Identity layout: lists are sorted by the physical id itself.
            None => self.out.contains_edge(src, dst),
            // Remapped layout: lists are sorted by external id, so search
            // with the external key.
            Some(remap) => {
                let key = remap.to_old(dst);
                self.out
                    .neighbors(src)
                    .binary_search_by_key(&key, |&u| remap.to_old(u))
                    .is_ok()
            }
        }
    }

    /// Access the outgoing adjacency (CSR) directly.
    pub fn out_adjacency(&self) -> &Adjacency {
        &self.out
    }

    /// Access the incoming adjacency (CSC) directly.
    pub fn in_adjacency(&self) -> &Adjacency {
        &self.incoming
    }

    /// The cumulative external→physical remap, if any.
    pub fn id_remap(&self) -> Option<&IdRemap> {
        self.remap.as_deref()
    }

    /// Shared handle to the remap, for sibling modules assembling derived
    /// graphs ([`Graph::apply_batch`]) and for programs whose *values* are
    /// vertex names (CC labels vertices with external ids on a remapped
    /// graph).
    pub fn remap_arc(&self) -> Option<Arc<IdRemap>> {
        self.remap.clone()
    }

    /// `true` when physical and external ids differ for at least one vertex.
    pub fn is_remapped(&self) -> bool {
        self.remap.as_deref().is_some_and(|r| !r.is_identity())
    }

    /// External (client-visible) id of physical vertex `p`.
    #[inline]
    pub fn external_id(&self, p: VertexId) -> VertexId {
        match &self.remap {
            None => p,
            Some(remap) => remap.to_old(p),
        }
    }

    /// Physical (array-index) id of external vertex `ext`.
    #[inline]
    pub fn to_physical(&self, ext: VertexId) -> VertexId {
        match &self.remap {
            None => ext,
            Some(remap) => remap.to_new(ext),
        }
    }

    /// Apply one more remap `step` (old-physical → new-physical), producing a
    /// graph whose arrays are physically reordered while the cumulative
    /// external↔physical bijection is composed so [`Graph::external_id`] stays
    /// correct. Entry order within each adjacency list is preserved, which
    /// keeps lists sorted by external id.
    pub fn remapped(&self, step: &IdRemap) -> Graph {
        let cumulative = match &self.remap {
            None => step.clone(),
            Some(prior) => prior.then(step),
        };
        let remap = (!cumulative.is_identity()).then(|| Arc::new(cumulative));
        Self::from_parts_with_remap(
            self.num_vertices,
            self.out.remapped(step),
            self.incoming.remapped(step),
            remap,
        )
    }

    /// Attach a cumulative external→physical remap to a graph whose arrays are
    /// *already* in the remapped order (the snapshot-restore path, where the
    /// adjacency was persisted post-remap and only the bijection travels
    /// separately).
    pub fn with_remap(mut self, remap: IdRemap) -> Graph {
        self.remap = (!remap.is_identity()).then(|| Arc::new(remap));
        self
    }

    /// Build a new graph with every edge direction flipped. Adjacency roles
    /// swap (CSR↔CSC) rather than rebuilding from an edge list, so neighbor
    /// lists stay in external-sorted order and any id remap is preserved.
    pub fn transpose(&self) -> Graph {
        Self::from_parts_with_remap(
            self.num_vertices,
            self.incoming.clone(),
            self.out.clone(),
            self.remap.clone(),
        )
    }

    /// Consistency check used by tests and property tests: CSR and CSC must describe
    /// the same edge set and every degree sum must equal the edge count.
    pub fn validate(&self) -> Result<(), String> {
        let out_sum: usize = self.vertices().map(|v| self.out_degree(v)).sum();
        let in_sum: usize = self.vertices().map(|v| self.in_degree(v)).sum();
        if out_sum != self.num_edges() {
            return Err(format!(
                "out-degree sum {} != edge count {}",
                out_sum,
                self.num_edges()
            ));
        }
        if in_sum != self.num_edges() {
            return Err(format!(
                "in-degree sum {} != edge count {}",
                in_sum,
                self.num_edges()
            ));
        }
        for v in self.vertices() {
            for &u in self.out_neighbors(v) {
                if !self.in_neighbors(u).contains(&v) {
                    return Err(format!("edge {v}->{u} present in CSR but missing in CSC"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new();
        b.extend_weighted([(0, 1, 1.0), (1, 3, 2.0), (0, 2, 4.0), (2, 3, 1.0)]);
        b.build()
    }

    #[test]
    fn degrees_and_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert!((g.average_degree() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adjacency_views_are_consistent() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        g.validate().unwrap();
    }

    #[test]
    fn transpose_flips_edges() {
        let g = diamond();
        let t = g.transpose();
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(3, 2));
        assert!(!t.has_edge(0, 1));
        assert_eq!(t.num_edges(), g.num_edges());
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, vec![Edge::unweighted(0, 5)]);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Graph::from_edges(0, vec![]);
        assert_eq!(g.num_vertices(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn edge_weights_follow_sorted_neighbor_order() {
        let g = diamond();
        assert_eq!(g.out_weights(0), &[1.0, 4.0]);
        assert_eq!(g.in_weights(3), &[2.0, 1.0]);
    }

    #[test]
    fn remapped_graph_relabels_consistently() {
        let g = diamond();
        let step = IdRemap::from_forward(vec![2, 0, 3, 1]);
        let r = g.remapped(&step);
        assert!(r.is_remapped());
        assert!(!g.is_remapped());
        r.validate().unwrap();
        assert_eq!(r.num_edges(), g.num_edges());
        for ext in g.vertices() {
            let p = r.to_physical(ext);
            assert_eq!(r.external_id(p), ext);
            assert_eq!(r.out_degree(p), g.out_degree(ext));
            assert_eq!(r.in_degree(p), g.in_degree(ext));
            let ext_nbrs: Vec<VertexId> = r
                .out_neighbors(p)
                .iter()
                .map(|&u| r.external_id(u))
                .collect();
            assert_eq!(ext_nbrs, g.out_neighbors(ext), "out list of external {ext}");
            assert_eq!(r.out_weights(p), g.out_weights(ext));
        }
        for e in g.edges() {
            assert!(r.has_edge(r.to_physical(e.src), r.to_physical(e.dst)));
        }
        assert!(!r.has_edge(r.to_physical(1), r.to_physical(0)));
    }

    #[test]
    fn remap_composes_across_two_steps() {
        let g = diamond();
        let a = IdRemap::from_forward(vec![2, 0, 3, 1]);
        let b = IdRemap::from_forward(vec![1, 3, 0, 2]);
        let twice = g.remapped(&a).remapped(&b);
        let direct = g.remapped(&a.then(&b));
        for ext in g.vertices() {
            assert_eq!(twice.to_physical(ext), direct.to_physical(ext));
        }
        twice.validate().unwrap();
    }

    #[test]
    fn transpose_preserves_remap_and_external_sorting() {
        let g = diamond();
        let r = g.remapped(&IdRemap::from_forward(vec![3, 2, 1, 0]));
        let t = r.transpose();
        assert!(t.is_remapped());
        assert!(t.has_edge(t.to_physical(1), t.to_physical(0)));
        assert!(!t.has_edge(t.to_physical(0), t.to_physical(1)));
        t.validate().unwrap();
        // In-lists of the transpose are the (external-sorted) out-lists of r.
        for v in r.vertices() {
            assert_eq!(t.in_neighbors(v), r.out_neighbors(v));
        }
    }

    #[test]
    fn identity_remap_is_free() {
        let g = diamond();
        let r = g.remapped(&IdRemap::identity());
        assert!(!r.is_remapped());
        assert!(r.id_remap().is_none());
        assert_eq!(r.external_id(3), 3);
        assert_eq!(r.to_physical(2), 2);
    }
}
