//! # slfe-graph
//!
//! In-memory graph storage for the SLFE reproduction.
//!
//! The crate provides:
//!
//! * [`GraphBuilder`] — an edge-list accumulator with optional de-duplication and
//!   self-loop removal, producing an immutable [`Graph`].
//! * [`Graph`] — a directed, weighted graph stored in both CSR (outgoing adjacency)
//!   and CSC (incoming adjacency) form, because the SLFE engine's *push* mode walks
//!   outgoing edges while its *pull* mode walks incoming edges (paper §3.3).
//! * [`generators`] — synthetic graph generators (RMAT, Erdős–Rényi, paths, stars,
//!   grids, complete graphs, trees) used to build laptop-scale proxies of the paper's
//!   datasets.
//! * [`bitset`] — dense `u64`-word [`Bitset`] frontiers (popcount active counts,
//!   word-wise merge of per-worker frontiers) plus the concurrent [`AtomicBitset`]
//!   used by the parallel preprocessing pass.
//! * [`delta`] — staged edge-update batches ([`UpdateBatch`]) applied against the
//!   immutable graph by rebuilding only touched adjacency ranges
//!   ([`Graph::apply_batch`]); the backbone of the incremental serving subsystem.
//! * [`storage`] — out-of-core adjacency: CSR/CSC written to disk in
//!   self-contained segments ([`SegmentedStore`]) and served through a
//!   byte-budgeted clock [`BufferPool`]; the [`AdjacencyStore`] trait lets the
//!   engine traverse either representation bit-identically, and
//!   [`GraphStorage::patched`] rewrites only dirty segments per update batch.
//! * [`faults`] — deterministic, seeded I/O fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]) threaded through every disk touchpoint, plus the
//!   bounded-backoff [`with_retries`] loop the recovery paths share.
//! * [`rng`] — a tiny dependency-free SplitMix64 PRNG backing the generators.
//! * [`io`] — plain-text edge-list load/save.
//! * [`datasets`] — a registry of the seven named graphs of the paper (PK, OK, LJ,
//!   WK, DI, ST, FS) as scaled-down synthetic proxies, plus the RMAT scale-out graph.
//! * [`stats`] — degree statistics used by the partitioner and the evaluation harness.

pub mod bitset;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod degrees;
pub mod delta;
pub mod faults;
pub mod generators;
pub mod graph;
pub mod io;
pub mod remap;
pub mod rng;
pub mod stats;
pub mod storage;
pub mod types;

pub use bitset::{AtomicBitset, Bitset};
pub use builder::GraphBuilder;
pub use csr::Adjacency;
pub use degrees::Degrees;
pub use delta::{BatchEffect, UpdateBatch};
pub use faults::{
    is_disk_full, with_retries, FaultAction, FaultInjector, FaultKind, FaultPlan, FaultRule,
    FaultSite, RetryPolicy, ALL_FAULT_SITES,
};
pub use graph::Graph;
pub use remap::{IdRemap, ReorderPolicy};
pub use storage::{
    AdjacencyStore, AdjacencyView, BufferPool, GraphStorage, PoolCounters, SegmentedStore,
    StorageConfig, StreamCursor,
};
pub use types::{EdgeWeight, VertexId, INVALID_VERTEX};
