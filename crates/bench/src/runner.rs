//! Uniform "run application X on engine Y over graph G" harness.

use slfe_apps::{cc, pagerank, sssp, tunkrank, widestpath, AppKind};
use slfe_baselines::{
    BaselineEngine, GeminiEngine, GraphChiEngine, LigraEngine, PowerGraphEngine, PowerLyraEngine,
};
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{datasets::Dataset, Graph, VertexId};
use slfe_metrics::ExecutionStats;

/// Engines the harness can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// SLFE with redundancy reduction (the paper's system).
    Slfe,
    /// SLFE with redundancy reduction disabled (ablation).
    SlfeNoRr,
    /// Gemini-like baseline.
    Gemini,
    /// PowerGraph-like baseline.
    PowerGraph,
    /// PowerLyra-like baseline.
    PowerLyra,
    /// Ligra-like single-machine baseline.
    Ligra,
    /// GraphChi-like out-of-core baseline.
    GraphChi,
}

impl EngineKind {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Slfe => "SLFE",
            EngineKind::SlfeNoRr => "SLFE (w/o RR)",
            EngineKind::Gemini => "Gemini",
            EngineKind::PowerGraph => "PowerG",
            EngineKind::PowerLyra => "PowerL",
            EngineKind::Ligra => "Ligra",
            EngineKind::GraphChi => "GraphChi",
        }
    }
}

/// Global experiment parameters (graph scale and cluster shape).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentContext {
    /// Divisor applied to the paper's dataset sizes (Table 4).
    pub scale: usize,
    /// Number of simulated cluster nodes.
    pub nodes: usize,
    /// Worker threads per node.
    pub workers: usize,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self {
            scale: 4000,
            nodes: 8,
            workers: 4,
        }
    }
}

impl ExperimentContext {
    /// Load the proxy for `dataset` at this context's scale.
    pub fn load(&self, dataset: Dataset) -> Graph {
        dataset.load_scaled(self.scale)
    }

    /// Cluster configuration with this context's default topology.
    pub fn cluster(&self) -> ClusterConfig {
        ClusterConfig::new(self.nodes, self.workers)
    }

    /// Cluster configuration with an explicit node count (scalability sweeps).
    pub fn cluster_with_nodes(&self, nodes: usize) -> ClusterConfig {
        ClusterConfig::new(nodes, self.workers)
    }
}

/// Uniform per-run summary consumed by the experiment renderers.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Full execution statistics (counters, trace, phases, per-node work).
    pub stats: ExecutionStats,
    /// Fraction of vertices early-converged at 90% of the iterations (Figure 2).
    pub ec_fraction_90: f64,
    /// Per node, per worker busy work (Figure 10a).
    pub per_node_worker_work: Vec<Vec<u64>>,
    /// Whether the run reached a fixpoint before the iteration cap.
    pub converged: bool,
}

impl AppRun {
    fn from_result(result: ProgramResult<f32>) -> Self {
        Self {
            ec_fraction_90: result.early_converged_fraction(0.9),
            per_node_worker_work: result.per_node_worker_work.clone(),
            converged: result.converged,
            stats: result.stats,
        }
    }

    /// Simulated end-to-end seconds (preprocessing + execution).
    pub fn total_seconds(&self) -> f64 {
        self.stats.phases.total_seconds()
    }
}

/// Pick the traversal root the harness uses for SSSP/BFS/WP: the highest-out-degree
/// vertex, mirroring the paper's practice of rooting traversals at a well-connected
/// vertex so most of the graph is reachable.
pub fn default_root(graph: &Graph) -> VertexId {
    slfe_graph::stats::highest_out_degree_vertex(graph).unwrap_or(0)
}

/// Prepare the graph an application actually consumes: CC requires the symmetrised
/// graph (weakly-connected-component semantics), everything else runs on the
/// directed graph as-is.
pub fn prepare_graph(app: AppKind, graph: &Graph) -> Graph {
    match app {
        AppKind::ConnectedComponents => cc::symmetrize(graph),
        _ => graph.clone(),
    }
}

fn run_program<P: GraphProgram<Value = f32>>(
    engine: EngineKind,
    program: &P,
    graph: &Graph,
    cluster: ClusterConfig,
) -> ProgramResult<f32> {
    match engine {
        EngineKind::Slfe => SlfeEngine::build(graph, cluster, EngineConfig::default()).run(program),
        EngineKind::SlfeNoRr => {
            SlfeEngine::build(graph, cluster, EngineConfig::without_rr()).run(program)
        }
        EngineKind::Gemini => GeminiEngine::build(graph, cluster).run(program),
        EngineKind::PowerGraph => PowerGraphEngine::build(graph, cluster).run(program),
        EngineKind::PowerLyra => PowerLyraEngine::build(graph, cluster).run(program),
        EngineKind::Ligra => LigraEngine::build(graph, cluster.workers_per_node).run(program),
        EngineKind::GraphChi => GraphChiEngine::build(graph, cluster.workers_per_node).run(program),
    }
}

/// Run `app` on `engine` over `graph` (already prepared with [`prepare_graph`]).
pub fn run_app(engine: EngineKind, app: AppKind, graph: &Graph, cluster: ClusterConfig) -> AppRun {
    let result = match app {
        AppKind::Sssp => run_program(
            engine,
            &sssp::SsspProgram {
                root: default_root(graph),
            },
            graph,
            cluster,
        ),
        AppKind::Bfs => run_program(
            engine,
            &slfe_apps::bfs::BfsProgram {
                root: default_root(graph),
            },
            graph,
            cluster,
        ),
        AppKind::ConnectedComponents => {
            run_program(engine, &cc::CcProgram::for_graph(graph), graph, cluster)
        }
        AppKind::WidestPath => run_program(
            engine,
            &widestpath::WidestPathProgram {
                root: default_root(graph),
            },
            graph,
            cluster,
        ),
        AppKind::PageRank => run_program(
            engine,
            &pagerank::PageRankProgram::new(graph.num_vertices()),
            graph,
            cluster,
        ),
        AppKind::TunkRank => run_program(
            engine,
            &tunkrank::TunkRankProgram::default(),
            graph,
            cluster,
        ),
        other => panic!("the harness does not drive {other} (not part of the paper's evaluation)"),
    };
    AppRun::from_result(result)
}

/// Convenience: load the dataset proxy, prepare it for `app` and run.
pub fn run_on_dataset(
    ctx: &ExperimentContext,
    engine: EngineKind,
    app: AppKind,
    dataset: Dataset,
) -> AppRun {
    let graph = prepare_graph(app, &ctx.load(dataset));
    run_app(engine, app, &graph, ctx.cluster())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext {
            scale: 64_000,
            nodes: 4,
            workers: 2,
        }
    }

    #[test]
    fn harness_runs_every_paper_app_on_slfe() {
        let ctx = tiny_ctx();
        for app in AppKind::PAPER_EVALUATION {
            let run = run_on_dataset(&ctx, EngineKind::Slfe, app, Dataset::Pokec);
            assert!(run.stats.totals.edge_computations > 0, "{app} did no work");
            assert_eq!(run.stats.engine, "slfe");
        }
    }

    #[test]
    fn harness_runs_every_engine_on_sssp() {
        let ctx = tiny_ctx();
        for engine in [
            EngineKind::Slfe,
            EngineKind::SlfeNoRr,
            EngineKind::Gemini,
            EngineKind::PowerGraph,
            EngineKind::PowerLyra,
            EngineKind::Ligra,
            EngineKind::GraphChi,
        ] {
            let run = run_on_dataset(&ctx, engine, AppKind::Sssp, Dataset::Pokec);
            assert!(run.converged, "{} did not converge", engine.name());
        }
    }

    #[test]
    fn cc_gets_a_symmetrized_graph() {
        let g = slfe_graph::generators::path(6);
        let prepared = prepare_graph(AppKind::ConnectedComponents, &g);
        assert_eq!(prepared.num_edges(), 2 * g.num_edges());
        let unchanged = prepare_graph(AppKind::Sssp, &g);
        assert_eq!(unchanged.num_edges(), g.num_edges());
    }

    #[test]
    #[should_panic(expected = "does not drive")]
    fn harness_rejects_non_evaluation_apps() {
        let ctx = tiny_ctx();
        let _ = run_on_dataset(&ctx, EngineKind::Slfe, AppKind::SpMV, Dataset::Pokec);
    }
}
