/root/repo/target/debug/deps/slfe_cluster-c159dc3f31cc5df0.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

/root/repo/target/debug/deps/libslfe_cluster-c159dc3f31cc5df0.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/config.rs:
crates/cluster/src/stealing.rs:
