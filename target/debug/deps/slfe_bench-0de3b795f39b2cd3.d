/root/repo/target/debug/deps/slfe_bench-0de3b795f39b2cd3.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/slfe_bench-0de3b795f39b2cd3: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runner.rs:
crates/bench/src/timing.rs:
