/root/repo/target/debug/examples/engine_comparison-e37c9bc7aeb3244d.d: examples/engine_comparison.rs

/root/repo/target/debug/examples/engine_comparison-e37c9bc7aeb3244d: examples/engine_comparison.rs

examples/engine_comparison.rs:
