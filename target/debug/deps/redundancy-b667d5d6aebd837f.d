/root/repo/target/debug/deps/redundancy-b667d5d6aebd837f.d: crates/bench/benches/redundancy.rs

/root/repo/target/debug/deps/libredundancy-b667d5d6aebd837f.rmeta: crates/bench/benches/redundancy.rs

crates/bench/benches/redundancy.rs:
