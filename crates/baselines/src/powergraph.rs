//! PowerGraph-style baseline: synchronous GAS over random vertex placement.

use crate::gas::{GasConfig, GasEngine, Placement, ReplicationModel};
use crate::{BaselineEngine, BaselineKind};
use slfe_cluster::ClusterConfig;
use slfe_core::{GraphProgram, ProgramResult};
use slfe_graph::Graph;

/// The PowerGraph-like engine.
#[derive(Debug)]
pub struct PowerGraphEngine<'g> {
    inner: GasEngine<'g>,
}

impl<'g> PowerGraphEngine<'g> {
    /// Build a PowerGraph-like engine over `graph`.
    pub fn build(graph: &'g Graph, cluster: ClusterConfig) -> Self {
        let config = GasConfig {
            placement: Placement::Hash,
            replication: ReplicationModel::GatherAndScatter,
            frontier: true,
            per_vertex_overhead: 4,
            // PowerGraph's general GAS dispatch, replica bookkeeping and
            // serialization cost roughly 20x more per edge than a lean dense-scan
            // engine; the published Gemini evaluation reports ~19x end-to-end over
            // PowerGraph-class systems, which this constant reproduces.
            seconds_per_work_unit: 100.0e-9,
            ..GasConfig::base(BaselineKind::PowerGraph.name())
        };
        Self {
            inner: GasEngine::build(graph, cluster, config),
        }
    }

    /// Access the underlying GAS engine.
    pub fn engine(&self) -> &GasEngine<'g> {
        &self.inner
    }
}

impl BaselineEngine for PowerGraphEngine<'_> {
    fn kind(&self) -> BaselineKind {
        BaselineKind::PowerGraph
    }

    fn run<P: GraphProgram>(&self, program: &P) -> ProgramResult<P::Value> {
        self.inner.run(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_apps::{pagerank, sssp};
    use slfe_core::{EngineConfig, SlfeEngine};
    use slfe_graph::datasets::Dataset;

    #[test]
    fn sssp_distances_match_dijkstra() {
        let g = Dataset::Pokec.load_scaled(32_000);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let engine = PowerGraphEngine::build(&g, ClusterConfig::new(8, 2));
        let result = engine.run(&sssp::SsspProgram { root });
        let expected = sssp::reference(&g, root);
        for (&x, &y) in result.values.iter().zip(&expected) {
            assert!((x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-3);
        }
        assert_eq!(result.stats.engine, "powergraph");
    }

    #[test]
    fn does_more_work_and_sends_more_messages_than_slfe() {
        // Table 5's qualitative claim: SLFE beats PowerGraph by a wide margin, both
        // in computation and in communication.
        let g = Dataset::LiveJournal.load_scaled(48_000);
        let pg = PowerGraphEngine::build(&g, ClusterConfig::new(8, 2));
        let slfe = SlfeEngine::build(&g, ClusterConfig::new(8, 2), EngineConfig::default());
        let program = pagerank::PageRankProgram::new(g.num_vertices());
        let a = pg.run(&program);
        let b = slfe.run(&program);
        assert!(a.stats.totals.work() > b.stats.totals.work());
        assert!(a.stats.totals.messages_sent > b.stats.totals.messages_sent);
    }
}
