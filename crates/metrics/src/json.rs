//! Minimal JSON emission helpers and a real recursive-descent parser.
//!
//! The bench bins hand-assemble their JSON (no serde in the offline
//! container). Two classes of bug crept in repeatedly: string fields
//! (`git_commit`, labels, notes) interpolated without escaping, and simulated
//! or derived floats (speedups, seconds) printed as bare `NaN`/`inf`, neither
//! of which is valid JSON. Every string and float a bin emits must go through
//! [`string`] / [`float`] (or [`float_fixed`]), which escape and guard.
//!
//! [`parse`] is the validation side: a strict, dependency-free JSON parser
//! used by tests and benches to prove that every emitted document (Chrome
//! traces, Prometheus-adjacent metric dumps, `BENCH_*.json`) really is JSON,
//! replacing the balanced-quote smoke scans earlier PRs relied on.

/// A JSON string literal: quoted, with `"`/`\\` and control characters
/// escaped.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number from a float: the shortest round-trip representation for
/// finite values, `null` for `NaN`/`±inf` (bare `NaN` is not JSON).
pub fn float(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        // `{}` prints integral floats without a point; keep them numbers but
        // unambiguous floats for downstream readers.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// [`float`] with fixed precision for finite values.
pub fn float_fixed(x: f64, precision: usize) -> String {
    if x.is_finite() {
        format!("{x:.precision$}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, members in document order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing content after the top-level value
/// (other than whitespace) is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a low surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err("invalid low surrogate".to_string());
                                    }
                                    let combined =
                                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or("invalid surrogate pair".to_string())?
                                } else {
                                    return Err("unpaired high surrogate".to_string());
                                }
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err("unpaired low surrogate".to_string());
                            } else {
                                char::from_u32(first).ok_or("invalid \\u escape".to_string())?
                            };
                            out.push(c);
                            // hex4 leaves pos one past the last digit; undo the
                            // blanket advance below.
                            self.pos -= 1;
                        }
                        other => {
                            return Err(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).map_err(|e| e.to_string())?);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("invalid number at byte {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(format!("digit required after '.' at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(format!("digit required in exponent at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("unparseable number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_quoted_and_escaped() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(string("bell\u{7}"), "\"bell\\u0007\"");
        assert_eq!(string(""), "\"\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
        assert_eq!(float(f64::NEG_INFINITY), "null");
        assert_eq!(float_fixed(f64::NAN, 6), "null");
        assert_eq!(float_fixed(f64::NEG_INFINITY, 2), "null");
    }

    #[test]
    fn finite_floats_stay_numbers() {
        assert_eq!(float(1.5), "1.5");
        assert_eq!(float(2.0), "2.0");
        assert_eq!(float(-0.25), "-0.25");
        assert_eq!(float_fixed(1.23456789, 4), "1.2346");
        assert_eq!(float_fixed(3.0, 6), "3.000000");
    }

    #[test]
    fn parser_handles_every_value_kind() {
        let doc = r#"{"a": null, "b": true, "c": false, "d": 1.5e2,
                      "e": "str", "f": [1, 2, 3], "g": {"nested": -0.25}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("d").unwrap().as_f64(), Some(150.0));
        assert_eq!(v.get("e").unwrap().as_str(), Some("str"));
        assert_eq!(v.get("f").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("g").unwrap().get("nested").unwrap().as_f64(),
            Some(-0.25)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parser_decodes_string_escapes() {
        let v = parse(r#""a\"b\\c\nd\t\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\tA\u{e9}"));
        // Surrogate pair: U+1F600.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Raw multi-byte UTF-8 passes through.
        let v = parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800\"",
            "[1] trailing",
            "NaN",
            "{'single': 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn parser_enforces_depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn emitted_fields_parse_back() {
        let doc = format!(
            "{{\"label\": {}, \"speedup\": {}, \"seconds\": {}}}",
            string("odd \"label\"\n"),
            float(f64::INFINITY),
            float_fixed(0.125, 6)
        );
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("odd \"label\"\n"));
        assert_eq!(v.get("speedup"), Some(&Json::Null));
        assert_eq!(v.get("seconds").unwrap().as_f64(), Some(0.125));
    }
}
