//! Run-level execution statistics returned by every engine.

use crate::counters::Counters;
use crate::trace::IterationTrace;

/// Where the run's wall-clock time went.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PhaseBreakdown {
    /// Seconds spent generating the redundancy-reduction guidance (SLFE only;
    /// zero for baselines). Figure 8's "SLFE overhead" bar.
    pub preprocessing_seconds: f64,
    /// Seconds spent in the iterative execution phase.
    pub execution_seconds: f64,
}

impl PhaseBreakdown {
    /// Total seconds across phases — the "end-to-end" time of Figure 8.
    pub fn total_seconds(&self) -> f64 {
        self.preprocessing_seconds + self.execution_seconds
    }
}

/// Everything a single engine run reports back.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ExecutionStats {
    /// Engine name ("slfe", "gemini", "powergraph", ...).
    pub engine: String,
    /// Application name ("sssp", "pagerank", ...).
    pub application: String,
    /// Number of vertices of the processed graph.
    pub num_vertices: usize,
    /// Number of edges of the processed graph.
    pub num_edges: usize,
    /// Number of simulated cluster nodes used.
    pub num_nodes: usize,
    /// Number of worker threads per node.
    pub workers_per_node: usize,
    /// Number of iterations until convergence/termination.
    pub iterations: u32,
    /// Aggregate work counters.
    pub totals: Counters,
    /// Wall-clock phase breakdown.
    pub phases: PhaseBreakdown,
    /// Per-iteration trace (may be empty if tracing was disabled).
    pub trace: IterationTrace,
    /// Per-node busy work (counted units), indexed by node id. Used for the
    /// inter-node imbalance analysis of Figure 10(b).
    pub per_node_work: Vec<u64>,
}

impl ExecutionStats {
    /// Create a stats shell for `engine` running `application`.
    pub fn new(engine: impl Into<String>, application: impl Into<String>) -> Self {
        Self {
            engine: engine.into(),
            application: application.into(),
            ..Self::default()
        }
    }

    /// Updates per vertex (Table 2 metric).
    pub fn updates_per_vertex(&self) -> f64 {
        self.totals.updates_per_vertex(self.num_vertices)
    }

    /// Speedup of this run relative to `baseline`, in counted work units.
    /// Values above 1.0 mean this run did less work.
    pub fn work_speedup_over(&self, baseline: &ExecutionStats) -> f64 {
        let own = self.totals.work().max(1);
        baseline.totals.work().max(1) as f64 / own as f64
    }

    /// Speedup of this run relative to `baseline` in wall-clock execution seconds
    /// (preprocessing excluded, as in Table 5 where the RRG cost is analysed
    /// separately in Figure 8).
    pub fn time_speedup_over(&self, baseline: &ExecutionStats) -> f64 {
        let own = self.phases.execution_seconds.max(1e-9);
        baseline.phases.execution_seconds.max(1e-9) / own
    }

    /// Runtime improvement over `baseline` as a percentage (Figure 5's metric):
    /// `(t_baseline - t_self) / t_baseline * 100`, computed on counted work.
    pub fn work_improvement_percent_over(&self, baseline: &ExecutionStats) -> f64 {
        let base = baseline.totals.work().max(1) as f64;
        let own = self.totals.work() as f64;
        (base - own) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(work: u64, updates: u64, vertices: usize, exec_secs: f64) -> ExecutionStats {
        let mut s = ExecutionStats::new("slfe", "sssp");
        s.num_vertices = vertices;
        s.totals = Counters {
            edge_computations: work,
            vertex_updates: updates,
            ..Counters::zero()
        };
        s.phases.execution_seconds = exec_secs;
        s
    }

    #[test]
    fn phase_total_adds_both_phases() {
        let p = PhaseBreakdown {
            preprocessing_seconds: 0.5,
            execution_seconds: 2.0,
        };
        assert!((p.total_seconds() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn updates_per_vertex_uses_vertex_count() {
        let s = stats(0, 50, 10, 1.0);
        assert!((s.updates_per_vertex() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn work_speedup_is_ratio_of_baseline_to_self() {
        let fast = stats(100, 0, 10, 1.0);
        let slow = stats(1000, 0, 10, 1.0);
        assert!((fast.work_speedup_over(&slow) - 10.0).abs() < 1e-9);
        assert!((slow.work_speedup_over(&fast) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn time_speedup_uses_execution_seconds() {
        let fast = stats(0, 0, 10, 0.5);
        let slow = stats(0, 0, 10, 5.0);
        assert!((fast.time_speedup_over(&slow) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn improvement_percent_matches_figure5_semantics() {
        let slfe = stats(600, 0, 10, 1.0);
        let gemini = stats(1000, 0, 10, 1.0);
        assert!((slfe.work_improvement_percent_over(&gemini) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_does_not_divide_by_zero() {
        let a = stats(0, 0, 10, 0.0);
        let b = stats(0, 0, 10, 0.0);
        assert!(a.work_speedup_over(&b).is_finite());
        assert!(a.time_speedup_over(&b).is_finite());
    }
}
