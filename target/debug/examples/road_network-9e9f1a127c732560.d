/root/repo/target/debug/examples/road_network-9e9f1a127c732560.d: examples/road_network.rs

/root/repo/target/debug/examples/libroad_network-9e9f1a127c732560.rmeta: examples/road_network.rs

examples/road_network.rs:
