//! The [`DeltaServer`] serving loop: apply an edge-update batch, repair the RR
//! guidance, warm re-converge the program, answer queries.

use slfe_cluster::{Cluster, ClusterConfig, GlobalChunkLayout, LayoutPatchStats, WorkerPool};
use slfe_core::{EngineConfig, GraphProgram, ProgramResult, RepairReport, RrGuidance, SlfeEngine};
use slfe_graph::{BatchEffect, Graph, GraphStorage, UpdateBatch, VertexId};
use slfe_partition::{ChunkingPartitioner, Partitioner, Partitioning};
use std::sync::Arc;
use std::time::Instant;

/// Bytes of one shipped edge update: two 4-byte vertex ids plus a 4-byte weight.
const UPDATE_RECORD_BYTES: u64 = 12;

/// Serving-loop configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated cluster topology the server partitions each graph version over.
    pub cluster: ClusterConfig,
    /// Engine configuration used for the initial cold run and every restart.
    pub engine: EngineConfig,
    /// Node where update batches arrive before being forwarded to partition
    /// owners (the simulated client connection point).
    pub ingest_node: usize,
    /// When a batch dirties more than this fraction of all vertices the server
    /// runs the program from scratch instead of warm-starting: past this point
    /// the invalidation pass would walk most of the graph anyway.
    pub full_recompute_dirty_fraction: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            cluster: ClusterConfig::new(2, 2),
            engine: EngineConfig::default(),
            ingest_node: 0,
            full_recompute_dirty_fraction: 0.5,
        }
    }
}

/// What one applied batch cost and changed.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// What the batch changed in the graph.
    pub effect: BatchEffect,
    /// How the RR guidance was brought up to date (repair vs regeneration).
    pub guidance: RepairReport,
    /// Counted work of the re-convergence, including the warm-start
    /// invalidation pass. Compare against a from-scratch run's work to see what
    /// serving incrementally saved.
    pub work: u64,
    /// Iterations the re-convergence ran.
    pub iterations: u32,
    /// Whether the re-convergence reached a fixpoint (it always should, unless
    /// the engine's iteration cap is tighter than the disturbance).
    pub converged: bool,
    /// `true` when the server fell back to a from-scratch run (dirty fraction
    /// above [`ServerConfig::full_recompute_dirty_fraction`]).
    pub full_recompute: bool,
    /// Simulated messages spent shipping the batch's dirty updates from the
    /// ingest node to their partition owners.
    pub distribution_messages: u64,
    /// What patching the chunk layout to this graph version cost: only the
    /// dirty endpoints' owner nodes (plus the appended vertices' receiving
    /// nodes) are re-derived; everything else is carried over from the
    /// previous version.
    pub layout_patch: LayoutPatchStats,
    /// Out-of-core serving only: how many disk segments this batch rewrote
    /// across both adjacency directions ([`GraphStorage::patched`] — the
    /// segment analogue of the adjacency range patch). 0 when the server runs
    /// in-memory.
    pub segments_rewritten: u64,
    /// Wall-clock seconds for the whole apply (graph patch + guidance + rerun).
    pub wall_seconds: f64,
}

/// Cumulative serving statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Batches applied since the server was built.
    pub batches_applied: u64,
    /// Total counted re-convergence work across all batches.
    pub total_work: u64,
    /// Total simulated batch-distribution messages.
    pub total_distribution_messages: u64,
    /// How many batches fell back to a full recompute.
    pub full_recomputes: u64,
    /// How many guidance updates fell back to full regeneration.
    pub guidance_regenerations: u64,
}

/// An always-on serving instance of one graph program.
///
/// The server owns the current graph version, the (incrementally maintained)
/// redundancy-reduction guidance and the program's current fixpoint. Because
/// several programs capture graph-dependent state (`PageRank` holds `|V|`,
/// `Heat` precomputes out-degree shares), the server is built from a *program
/// factory* that re-instantiates the program for each graph version.
///
/// ```
/// use slfe_delta::{DeltaServer, ServerConfig};
/// use slfe_graph::{generators, UpdateBatch};
/// # use slfe_core::{AggregationKind, GraphProgram};
/// # use slfe_graph::{EdgeWeight, Graph, VertexId};
/// # #[derive(Clone, Copy)] struct Sssp { root: VertexId }
/// # impl GraphProgram for Sssp {
/// #     type Value = f32;
/// #     fn aggregation(&self) -> AggregationKind { AggregationKind::MinMax }
/// #     fn name(&self) -> &'static str { "sssp" }
/// #     fn initial_value(&self, v: VertexId, _g: &Graph) -> f32 {
/// #         if v == self.root { 0.0 } else { f32::INFINITY }
/// #     }
/// #     fn initial_active(&self, v: VertexId, _g: &Graph) -> bool { v == self.root }
/// #     fn identity(&self) -> f32 { f32::INFINITY }
/// #     fn edge_contribution(&self, _s: VertexId, v: f32, w: EdgeWeight) -> Option<f32> {
/// #         v.is_finite().then_some(v + w)
/// #     }
/// #     fn combine(&self, a: f32, b: f32) -> f32 { a.min(b) }
/// #     fn apply(&self, _d: VertexId, old: f32, g: f32) -> f32 { old.min(g) }
/// # }
/// let graph = generators::rmat(500, 4000, 0.57, 0.19, 0.19, 7);
/// let mut server = DeltaServer::new(graph, |_g| Sssp { root: 0 }, ServerConfig::default());
/// let mut batch = UpdateBatch::new();
/// batch.insert(0, 499, 1.5);
/// let outcome = server.apply(&batch);
/// assert!(outcome.converged);
/// assert!(server.value(499).is_some());
/// ```
pub struct DeltaServer<P, F>
where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    make_program: F,
    program: P,
    graph: Graph,
    config: ServerConfig,
    rrg: RrGuidance,
    /// The persistent worker pool, created once at server startup and threaded
    /// through every graph version's engine (cold run, guidance repair *and*
    /// warm restarts) — applying a batch spawns zero threads.
    pool: Arc<WorkerPool>,
    /// The vertex → node assignment, built once at startup and **kept stable
    /// across graph versions** (the id space only grows; appended vertices
    /// join the least-loaded node, so sustained growth cannot skew one
    /// node's load). Stability is what lets the chunk layout be patched
    /// instead of re-derived per batch; sharing the `Arc` with each
    /// version's cluster is what keeps batch application free of O(V) copies.
    partitioning: Arc<Partitioning>,
    /// The degree-aware chunk layout of the current graph version,
    /// incrementally patched at each batch's dirty endpoints
    /// ([`GlobalChunkLayout::patched`]) and handed to every engine this
    /// server builds — warm and cold paths share the same instance, built
    /// once per applied version.
    layout: GlobalChunkLayout,
    /// Out-of-core serving ([`EngineConfig::storage_budget_bytes`] set): the
    /// current graph version's disk-segment store, patched per batch at the
    /// dirty segments only and threaded into every engine this server builds.
    /// `None` runs in-memory.
    storage: Option<Arc<GraphStorage>>,
    result: ProgramResult<P::Value>,
    stats: ServerStats,
}

impl<P, F> DeltaServer<P, F>
where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    /// Build the server: partition `graph`, generate the guidance, run the
    /// program cold once. Every subsequent [`DeltaServer::apply`] is warm.
    pub fn new(graph: Graph, make_program: F, config: ServerConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.cluster.total_workers()));
        let program = make_program(&graph);
        let rrg = RrGuidance::generate_parallel_on(&graph, &pool);
        let partitioning =
            Arc::new(ChunkingPartitioner::default().partition(&graph, config.cluster.num_nodes));
        let cluster =
            Cluster::with_shared_partitioning(Arc::clone(&partitioning), config.cluster.clone());
        let layout = cluster.build_layout(&graph);
        // Out-of-core serving: the segments are written once here; every
        // batch then patches only the dirty ones (`GraphStorage::patched`).
        let storage = config.engine.storage_config().map(|sc| {
            Arc::new(
                GraphStorage::build(&graph, &sc)
                    .expect("failed to write out-of-core graph segments"),
            )
        });
        let engine = SlfeEngine::with_prebuilt_layout_and_storage(
            &graph,
            cluster,
            config.engine.clone(),
            rrg.clone(),
            Arc::clone(&pool),
            layout.clone(),
            storage.clone(),
        );
        let result = engine.run(&program);
        drop(engine);
        Self {
            make_program,
            program,
            graph,
            config,
            rrg,
            pool,
            partitioning,
            layout,
            storage,
            result,
            stats: ServerStats::default(),
        }
    }

    /// Apply one edge-update batch: patch the graph, repair the guidance, warm
    /// re-converge the program, and account the batch-shipping traffic.
    pub fn apply(&mut self, batch: &UpdateBatch) -> BatchOutcome {
        let start = Instant::now();
        let (graph, effect) = self.graph.apply_batch(batch);
        if effect.is_noop() {
            // Nothing changed: keep every artifact (graph version, cluster,
            // guidance, fixpoint) instead of rebuilding them all for nothing.
            self.stats.batches_applied += 1;
            return BatchOutcome {
                effect,
                guidance: RepairReport {
                    regenerated: false,
                    affected_vertices: 0,
                    work: 0,
                },
                work: 0,
                iterations: 0,
                converged: true,
                full_recompute: false,
                distribution_messages: 0,
                layout_patch: LayoutPatchStats::default(),
                segments_rewritten: 0,
                wall_seconds: start.elapsed().as_secs_f64(),
            };
        }
        let n = graph.num_vertices();
        let (rrg, guidance) = self.rrg.repair_on(&graph, &effect.dirty, &self.pool);
        let program = (self.make_program)(&graph);

        // One partitioning, one layout, per applied version — shared by the
        // warm path and the cold-run fallback alike. The partitioning only
        // grows (appended vertices join the least-loaded nodes, keeping the
        // per-node loads bounded under sustained growth), so chunk estimates
        // move exclusively at the batch's dirty endpoints plus the receiving
        // nodes, and the layout is patched there instead of being re-derived
        // with an O(V+E) scan+sort.
        let num_nodes = self.config.cluster.num_nodes;
        // The previous version's cluster is gone by now, so the Arc is
        // unshared and `make_mut` extends in place.
        let growth_receivers = Arc::make_mut(&mut self.partitioning).extend_to(n);
        let mut touched = vec![false; num_nodes];
        for node in growth_receivers {
            touched[node] = true;
        }
        for &v in &effect.dirty {
            touched[self.partitioning.owner_of(v)] = true;
        }
        let owned: Vec<&[VertexId]> = (0..num_nodes)
            .map(|node| self.partitioning.vertices_of(node))
            .collect();
        let (layout, layout_patch) =
            self.layout
                .patched(&graph, &owned, self.config.cluster.chunk_size, &touched);
        // Out-of-core: rewrite only the segments a dirty endpoint lives in
        // (plus fresh segments for appended vertices); the clean ones keep
        // their bytes and any warm buffer-pool frames.
        let (storage, segments_rewritten) = match &self.storage {
            Some(storage) => {
                let (patched, rewritten) = storage
                    .patched(&graph, &effect.dirty)
                    .expect("failed to patch out-of-core segments");
                (Some(Arc::new(patched)), rewritten)
            }
            None => (None, 0),
        };
        let cluster = Cluster::with_shared_partitioning(
            Arc::clone(&self.partitioning),
            self.config.cluster.clone(),
        );
        let engine = SlfeEngine::with_prebuilt_layout_and_storage(
            &graph,
            cluster,
            self.config.engine.clone(),
            rrg.clone(),
            Arc::clone(&self.pool),
            layout.clone(),
            storage.clone(),
        );
        let dirty_fraction = effect.dirty.len() as f64 / n.max(1) as f64;
        let full_recompute = dirty_fraction > self.config.full_recompute_dirty_fraction;
        let result = if full_recompute {
            engine.run(&program)
        } else {
            engine.run_from_effect(&program, &self.result, &effect)
        };
        let distribution_messages = engine.cluster().record_batch_distribution(
            self.config.ingest_node,
            effect.dirty.iter().copied(),
            UPDATE_RECORD_BYTES,
        );
        drop(engine);

        let outcome = BatchOutcome {
            effect,
            guidance,
            work: result.stats.totals.work(),
            iterations: result.stats.iterations,
            converged: result.converged,
            full_recompute,
            distribution_messages,
            layout_patch,
            segments_rewritten,
            wall_seconds: start.elapsed().as_secs_f64(),
        };
        self.stats.batches_applied += 1;
        self.stats.total_work += outcome.work;
        self.stats.total_distribution_messages += distribution_messages;
        self.stats.full_recomputes += full_recompute as u64;
        self.stats.guidance_regenerations += guidance.regenerated as u64;
        self.graph = graph;
        self.rrg = rrg;
        self.layout = layout;
        self.storage = storage;
        self.program = program;
        self.result = result;
        outcome
    }

    /// Point query: the program's current value at `v` (`None` when `v` is
    /// outside the current graph version).
    pub fn value(&self, v: VertexId) -> Option<P::Value> {
        self.result.values.get(v as usize).copied()
    }

    /// The full current value vector.
    pub fn values(&self) -> &[P::Value] {
        &self.result.values
    }

    /// The `k` vertices ranked by `compare` (greatest first), ties broken by
    /// vertex id ascending — deterministic regardless of worker count.
    pub fn top_k_by(
        &self,
        k: usize,
        mut compare: impl FnMut(&P::Value, &P::Value) -> std::cmp::Ordering,
    ) -> Vec<(VertexId, P::Value)> {
        let mut ranked: Vec<(VertexId, P::Value)> = self
            .result
            .values
            .iter()
            .enumerate()
            .map(|(v, &value)| (v as VertexId, value))
            .collect();
        ranked.sort_by(|a, b| compare(&b.1, &a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// The current graph version.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current program instance (rebuilt per graph version).
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The current full program result.
    pub fn result(&self) -> &ProgramResult<P::Value> {
        &self.result
    }

    /// The incrementally maintained guidance.
    pub fn guidance(&self) -> &RrGuidance {
        &self.rrg
    }

    /// The stable vertex → node assignment shared by every graph version.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The current graph version's chunk layout (patched, not rebuilt).
    pub fn layout(&self) -> &GlobalChunkLayout {
        &self.layout
    }

    /// The current graph version's out-of-core segment store (patched per
    /// batch), when the server runs in that mode.
    pub fn storage(&self) -> Option<&Arc<GraphStorage>> {
        self.storage.as_ref()
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The server's persistent worker pool (shared with every engine it builds).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }
}

impl<P, F> DeltaServer<P, F>
where
    P: GraphProgram,
    P::Value: PartialOrd,
    F: Fn(&Graph) -> P,
{
    /// The `k` largest values (PageRank-style ranking queries). For distance
    /// programs, rank with [`DeltaServer::top_k_by`] and a reversed comparator.
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, P::Value)> {
        self.top_k_by(k, |a, b| {
            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_apps::pagerank::PageRankProgram;
    use slfe_apps::sssp::SsspProgram;
    use slfe_core::RedundancyMode;
    use slfe_graph::rng::SplitMix64;
    use slfe_graph::{generators, stats};

    fn sssp_server(
        graph: Graph,
        root: VertexId,
        config: ServerConfig,
    ) -> DeltaServer<SsspProgram, impl Fn(&Graph) -> SsspProgram> {
        DeltaServer::new(graph, move |_| SsspProgram { root }, config)
    }

    fn mixed_batch(graph: &Graph, seed: u64, ops: usize) -> UpdateBatch {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = graph.num_vertices() as u32;
        let mut batch = UpdateBatch::new();
        for _ in 0..ops {
            let src = rng.range_u32(0, n);
            if rng.next_f64() < 0.7 {
                batch.insert(src, rng.range_u32(0, n), rng.range_f32(1.0, 10.0));
            } else if let Some(&dst) = graph.out_neighbors(src).first() {
                batch.delete(src, dst);
            }
        }
        batch
    }

    #[test]
    fn served_sssp_stays_identical_to_from_scratch_across_batches() {
        let graph = generators::rmat(600, 4200, 0.57, 0.19, 0.19, 11);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let mut server = sssp_server(graph.clone(), root, ServerConfig::default());
        let mut current = graph;
        for round in 0..4u64 {
            let batch = mixed_batch(&current, round + 70, 25);
            let outcome = server.apply(&batch);
            assert!(outcome.converged);
            current = current.apply_batch(&batch).0;
            let oracle = SlfeEngine::build(
                &current,
                ServerConfig::default().cluster,
                EngineConfig::default(),
            )
            .run(&SsspProgram { root });
            assert_eq!(
                server
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                oracle
                    .values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "round {round}: served values diverge from a from-scratch run"
            );
            // The maintained guidance matches regeneration on the current graph.
            assert!(server
                .guidance()
                .guidance_eq(&RrGuidance::generate(&current)));
        }
        assert_eq!(server.stats().batches_applied, 4);
    }

    #[test]
    fn served_pagerank_tracks_the_exact_fixpoint() {
        let graph = generators::rmat(300, 2100, 0.57, 0.19, 0.19, 23);
        // Ruler-free engine: the oracle below is then the exact fixpoint.
        let config = ServerConfig {
            engine: EngineConfig::default()
                .with_redundancy(RedundancyMode::Disabled)
                .with_max_iterations(300),
            ..ServerConfig::default()
        };
        let mut server = DeltaServer::new(
            graph.clone(),
            |g: &Graph| PageRankProgram::new(g.num_vertices()),
            config.clone(),
        );
        let batch = mixed_batch(&graph, 5, 20);
        let outcome = server.apply(&batch);
        assert!(outcome.converged);
        let mutated = graph.apply_batch(&batch).0;
        let oracle = SlfeEngine::build(&mutated, config.cluster.clone(), config.engine.clone())
            .run(&PageRankProgram::new(mutated.num_vertices()));
        for v in 0..mutated.num_vertices() {
            assert!(
                (server.values()[v] - oracle.values[v]).abs() < 1e-5,
                "vertex {v}: served {} vs oracle {}",
                server.values()[v],
                oracle.values[v]
            );
        }
        // Warm restart converges in fewer iterations than the cold oracle run.
        assert!(outcome.iterations <= oracle.stats.iterations);
    }

    #[test]
    fn point_and_top_k_queries_answer_from_the_current_fixpoint() {
        let graph = generators::layered(6, 30, 4, 9);
        let mut server = sssp_server(graph, 0, ServerConfig::default());
        assert_eq!(server.value(0), Some(0.0));
        assert!(server.value(10_000).is_none());
        // Nearest vertices: smallest finite distances first.
        let nearest = server.top_k_by(5, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        assert_eq!(nearest.len(), 5);
        assert_eq!(nearest[0], (0, 0.0));
        assert!(nearest.windows(2).all(|w| w[0].1 <= w[1].1));

        // After inserting a zero-ish cost shortcut the target joins the top.
        let far = (server.graph().num_vertices() - 1) as VertexId;
        let mut batch = UpdateBatch::new();
        batch.insert(0, far, 0.001);
        server.apply(&batch);
        let nearest = server.top_k_by(2, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        assert_eq!(nearest[1].0, far);
    }

    #[test]
    fn oversized_batches_fall_back_to_full_recompute() {
        let graph = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 31);
        let config = ServerConfig {
            full_recompute_dirty_fraction: 0.0, // force the fallback
            ..ServerConfig::default()
        };
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let mut server = sssp_server(graph.clone(), root, config);
        let batch = mixed_batch(&graph, 3, 10);
        let outcome = server.apply(&batch);
        assert!(outcome.full_recompute);
        assert_eq!(server.stats().full_recomputes, 1);
        let mutated = graph.apply_batch(&batch).0;
        let oracle = SlfeEngine::build(
            &mutated,
            ServerConfig::default().cluster,
            EngineConfig::default(),
        )
        .run(&SsspProgram { root });
        assert_eq!(
            server
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            oracle
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn batch_distribution_traffic_is_accounted() {
        let graph = generators::rmat(400, 2400, 0.57, 0.19, 0.19, 17);
        let mut server = sssp_server(graph.clone(), 0, ServerConfig::default());
        let batch = mixed_batch(&graph, 8, 30);
        let outcome = server.apply(&batch);
        // With two nodes and dozens of random dirty endpoints, some must be
        // remote to the ingest node.
        assert!(outcome.distribution_messages > 0);
        assert!(outcome.distribution_messages <= outcome.effect.dirty.len() as u64);
        assert_eq!(
            server.stats().total_distribution_messages,
            outcome.distribution_messages
        );
    }

    /// Applying a batch must *patch* the chunk layout — touching only the
    /// dirty endpoints' owner nodes — and the patched layout must equal a
    /// from-scratch derivation over the server's stable partitioning, batch
    /// after batch.
    #[test]
    fn applying_batches_patches_the_layout_instead_of_rebuilding() {
        let graph = generators::rmat(4000, 24_000, 0.57, 0.19, 0.19, 97);
        let config = ServerConfig {
            cluster: ClusterConfig::new(8, 1),
            ..ServerConfig::default()
        };
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let mut server = sssp_server(graph, root, config);
        let initial_chunks = server.layout().chunks().len();
        assert!(initial_chunks > 8, "need a real chunk population");

        for round in 0..4u64 {
            // A two-edge batch between two vertices: at most 4 dirty
            // endpoints, so at most 4 owner nodes may be rebuilt.
            let n = server.graph().num_vertices() as u32;
            let mut rng = SplitMix64::seed_from_u64(round + 500);
            let mut batch = UpdateBatch::new();
            batch
                .insert(rng.range_u32(0, n), rng.range_u32(0, n), 1.5)
                .insert(rng.range_u32(0, n), rng.range_u32(0, n), 2.5);
            let outcome = server.apply(&batch);
            assert!(outcome.converged);

            // Patch locality: only dirty-endpoint owners were re-derived,
            // and their owned vertices bound the patch's counted work.
            assert!(
                outcome.layout_patch.nodes_rebuilt <= outcome.effect.dirty.len().min(8),
                "round {round}: rebuilt {} nodes for {} dirty endpoints",
                outcome.layout_patch.nodes_rebuilt,
                outcome.effect.dirty.len()
            );
            assert!(
                outcome.layout_patch.vertices_scanned < server.graph().num_vertices(),
                "round {round}: patch scanned the whole graph"
            );
            assert!(outcome.layout_patch.chunks_reused > 0);

            // Patch correctness: bit-equal to the from-scratch layout over
            // the same (stable) partitioning.
            let owned: Vec<&[slfe_graph::VertexId]> = (0..8)
                .map(|node| server.partitioning().vertices_of(node))
                .collect();
            let scratch = slfe_cluster::GlobalChunkLayout::build(
                server.graph(),
                &owned,
                server.config().cluster.chunk_size,
            );
            assert_eq!(
                *server.layout(),
                scratch,
                "round {round}: patched layout diverges from a from-scratch build"
            );
        }
    }

    /// The stable partitioning grows with appended vertices and keeps serving
    /// correct values (the from-scratch oracle uses its own partitioning, so
    /// equality here also proves values are partitioning-independent).
    #[test]
    fn appended_vertices_join_the_stable_partitioning() {
        let graph = generators::rmat(500, 3000, 0.57, 0.19, 0.19, 77);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let mut server = sssp_server(graph.clone(), root, ServerConfig::default());
        let n = graph.num_vertices() as u32;
        let mut batch = UpdateBatch::new();
        batch.insert(root, n + 3, 1.0).insert(n + 3, n + 7, 2.0);
        let outcome = server.apply(&batch);
        assert!(outcome.converged);
        assert_eq!(server.partitioning().num_vertices(), n as usize + 8);
        // Every node's list stays ascending no matter which node received
        // which appended id.
        for node in 0..server.config().cluster.num_nodes {
            let owned = server.partitioning().vertices_of(node);
            assert!(owned.windows(2).all(|w| w[0] < w[1]));
        }
        let (mutated, _) = graph.apply_batch(&batch);
        let oracle = SlfeEngine::build(
            &mutated,
            ServerConfig::default().cluster,
            EngineConfig::default(),
        )
        .run(&SsspProgram { root });
        assert_eq!(
            server
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            oracle
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    /// Growth-skew regression: sustained append-heavy batches must keep the
    /// stable partitioning's node loads bounded (the old code piled every
    /// grown vertex onto the last node, unboundedly) while serving stays
    /// bit-correct against a from-scratch oracle.
    #[test]
    fn sustained_growth_batches_keep_node_loads_bounded() {
        let graph = generators::rmat(400, 2400, 0.57, 0.19, 0.19, 53);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let config = ServerConfig {
            cluster: ClusterConfig::new(4, 1),
            ..ServerConfig::default()
        };
        let mut server = sssp_server(graph.clone(), root, config);
        let spread = |p: &Partitioning| {
            let c = p.vertex_counts();
            c.iter().max().unwrap() - c.iter().min().unwrap()
        };
        let initial_spread = spread(server.partitioning());
        let mut current = graph;
        for round in 0..10u64 {
            // Each batch appends 6 fresh vertices hanging off existing ones.
            let n = current.num_vertices() as u32;
            let mut rng = SplitMix64::seed_from_u64(round + 900);
            let mut batch = UpdateBatch::new();
            for k in 0..6u32 {
                batch.insert(rng.range_u32(0, n), n + k, rng.range_f32(1.0, 4.0));
            }
            let outcome = server.apply(&batch);
            assert!(outcome.converged);
            current = current.apply_batch(&batch).0;
            assert!(
                spread(server.partitioning()) <= initial_spread.max(1),
                "round {round}: node loads {:?} diverged",
                server.partitioning().vertex_counts()
            );
        }
        // All 60 appended vertices were assigned (and, per the loop above,
        // without widening the vertex-count spread).
        let counts = server.partitioning().vertex_counts();
        assert_eq!(counts.iter().sum::<usize>(), current.num_vertices());
        let oracle = SlfeEngine::build(&current, ClusterConfig::new(4, 1), EngineConfig::default())
            .run(&SsspProgram { root });
        assert_eq!(
            server
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            oracle
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    /// Out-of-core serving: a server whose engine streams disk segments must
    /// serve bit-identical values to an in-memory one across mixed batches,
    /// while patching only the dirty segments per batch.
    #[test]
    fn out_of_core_server_matches_in_memory_and_patches_segments() {
        let graph = generators::rmat(600, 4200, 0.57, 0.19, 0.19, 19);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let oocore = ServerConfig {
            engine: EngineConfig::default()
                .with_storage_budget(24 << 10)
                .with_storage_segment_bytes(2 << 10),
            ..ServerConfig::default()
        };
        let mut server = sssp_server(graph.clone(), root, oocore);
        let mut reference = sssp_server(graph.clone(), root, ServerConfig::default());
        assert!(server.storage().is_some());
        let total_segments = {
            let s = server.storage().unwrap();
            s.out_store().num_segments() + s.in_store().num_segments()
        };
        let mut current = graph;
        for round in 0..3u64 {
            let batch = mixed_batch(&current, round + 31, 15);
            let outcome = server.apply(&batch);
            let ref_outcome = reference.apply(&batch);
            assert!(outcome.converged && ref_outcome.converged);
            assert!(outcome.segments_rewritten > 0);
            assert!(
                outcome.segments_rewritten < total_segments as u64,
                "round {round}: batch rewrote all {total_segments} segments"
            );
            assert_eq!(ref_outcome.segments_rewritten, 0);
            current = current.apply_batch(&batch).0;
            assert_eq!(
                server
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                reference
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "round {round}: out-of-core serving diverges from in-memory"
            );
        }
        let pool = server.storage().unwrap().pool();
        assert!(pool.counters().segments_faulted > 0);
        assert!(pool.peak_resident_bytes() <= pool.budget_bytes());
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let graph = generators::rmat(150, 900, 0.57, 0.19, 0.19, 41);
        let mut server = sssp_server(graph, 0, ServerConfig::default());
        let before = server.values().to_vec();
        let outcome = server.apply(&UpdateBatch::new());
        assert!(outcome.effect.is_noop());
        assert_eq!(outcome.work, 0);
        assert_eq!(outcome.iterations, 0);
        assert_eq!(outcome.distribution_messages, 0);
        assert_eq!(server.values(), before.as_slice());
    }
}
