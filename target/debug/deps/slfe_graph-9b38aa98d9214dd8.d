/root/repo/target/debug/deps/slfe_graph-9b38aa98d9214dd8.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/types.rs

/root/repo/target/debug/deps/slfe_graph-9b38aa98d9214dd8: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/types.rs

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/rng.rs:
crates/graph/src/stats.rs:
crates/graph/src/types.rs:
