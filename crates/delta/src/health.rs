//! Serving health: graceful degradation instead of panics.
//!
//! The durability layer's failure contract is that a server which can no
//! longer uphold a guarantee *says so and keeps serving what it can*:
//!
//! * A failed snapshot (or segment compaction) leaves the server fully
//!   read-write — the WAL simply keeps growing until a later snapshot
//!   succeeds — but marks it **degraded** so operators see the recovery
//!   point going stale.
//! * A failed WAL trim after a successful snapshot is harmless (replay
//!   skips entries the snapshot already covers) and is only counted.
//! * A write-side failure that breaks the durability contract itself — a
//!   WAL append that cannot complete, a segment store that cannot be
//!   patched or rebuilt, or the disk filling up — flips the server into
//!   **read-only mode**: point and top-k queries keep answering from the
//!   last published version, while [`crate::DeltaServer::try_apply`]
//!   returns [`ApplyError::ReadOnly`] until the server is reopened.

use std::io;

/// Whether the server still accepts update batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServingMode {
    /// Normal operation: batches are accepted and queries answered.
    #[default]
    ReadWrite,
    /// Update side disabled after an unrecoverable write failure; queries
    /// keep answering from the last published version.
    ReadOnly,
}

/// Degradation state of one [`crate::DeltaServer`].
#[derive(Debug, Clone, Default)]
pub struct Health {
    mode: ServingMode,
    /// Why the server went read-only, when it did.
    read_only_reason: Option<String>,
    /// Snapshot attempts that failed (the server keeps serving; the WAL
    /// keeps growing until one succeeds).
    snapshot_failures: u64,
    /// The most recent snapshot failure, for operators.
    last_snapshot_error: Option<String>,
    /// WAL trims after a successful snapshot that failed (harmless: replay
    /// skips entries at or below the snapshot's sequence number).
    wal_trim_failures: u64,
    /// Full segment-store rebuilds performed after a patch failure or a
    /// poisoned execution.
    storage_rebuilds: u64,
    /// ReadOnly → ReadWrite transitions after a successful resume probe
    /// (see [`crate::DeltaServer::try_resume_writes`]).
    writes_resumed: u64,
}

impl Health {
    /// A healthy read-write state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current serving mode.
    pub fn mode(&self) -> ServingMode {
        self.mode
    }

    /// `true` once the update side has been disabled.
    pub fn is_read_only(&self) -> bool {
        self.mode == ServingMode::ReadOnly
    }

    /// Why the server is read-only, when it is.
    pub fn read_only_reason(&self) -> Option<&str> {
        self.read_only_reason.as_deref()
    }

    /// `true` when any guarantee is currently weakened: the server is
    /// read-only, or snapshots have been failing since the last success.
    pub fn is_degraded(&self) -> bool {
        self.is_read_only() || self.last_snapshot_error.is_some()
    }

    /// Snapshot attempts that failed so far.
    pub fn snapshot_failures(&self) -> u64 {
        self.snapshot_failures
    }

    /// The most recent snapshot failure message, until a snapshot succeeds.
    pub fn last_snapshot_error(&self) -> Option<&str> {
        self.last_snapshot_error.as_deref()
    }

    /// WAL trim failures absorbed so far.
    pub fn wal_trim_failures(&self) -> u64 {
        self.wal_trim_failures
    }

    /// Full segment-store rebuilds performed so far.
    pub fn storage_rebuilds(&self) -> u64 {
        self.storage_rebuilds
    }

    /// ReadOnly → ReadWrite transitions performed so far.
    pub fn writes_resumed(&self) -> u64 {
        self.writes_resumed
    }

    pub(crate) fn enter_read_only(&mut self, reason: String) {
        if self.mode == ServingMode::ReadWrite {
            self.mode = ServingMode::ReadOnly;
            self.read_only_reason = Some(reason);
        }
    }

    /// Re-enter read-write after a successful resume probe. A no-op unless
    /// the server is currently read-only.
    pub(crate) fn resume_writes(&mut self) {
        if self.mode == ServingMode::ReadOnly {
            self.mode = ServingMode::ReadWrite;
            self.read_only_reason = None;
            self.writes_resumed += 1;
        }
    }

    pub(crate) fn note_snapshot_failure(&mut self, e: &io::Error) {
        self.snapshot_failures += 1;
        self.last_snapshot_error = Some(e.to_string());
    }

    pub(crate) fn note_snapshot_success(&mut self) {
        self.last_snapshot_error = None;
    }

    pub(crate) fn note_wal_trim_failure(&mut self) {
        self.wal_trim_failures += 1;
    }

    pub(crate) fn note_storage_rebuild(&mut self) {
        self.storage_rebuilds += 1;
    }
}

/// Why [`crate::DeltaServer::try_apply`] rejected or could not complete a
/// batch. Every variant leaves the server answering queries from the last
/// published version — an apply failure never corrupts served state.
#[derive(Debug)]
pub enum ApplyError {
    /// The server is in read-only mode; `reason` is why it entered it.
    ReadOnly {
        /// The failure that disabled the update side.
        reason: String,
    },
    /// The WAL append (or its fsync) failed, so the batch was never made
    /// durable and was not applied. The server is now read-only.
    WalAppend(io::Error),
    /// The out-of-core segment store could not be patched *or* rebuilt for
    /// the new graph version. The server is now read-only, still serving
    /// the previous version.
    StoragePatch(io::Error),
    /// Segment reads failed beyond what retries and quarantine-rebuilds
    /// could absorb, twice (the run was re-driven once on a freshly rebuilt
    /// store). The results were discarded; the server is now read-only,
    /// still serving the previous version.
    ExecutionPoisoned {
        /// What the storage layer reported about the unreadable segments.
        note: String,
    },
}

impl ApplyError {
    /// Stable short name for the variant, independent of the (often
    /// OS-specific) error message. The front end's quarantine rule compares
    /// kinds — "failed the same way twice" — so messages that embed paths or
    /// errno text don't defeat poison detection.
    pub fn kind(&self) -> &'static str {
        match self {
            ApplyError::ReadOnly { .. } => "read_only",
            ApplyError::WalAppend(_) => "wal_append",
            ApplyError::StoragePatch(_) => "storage_patch",
            ApplyError::ExecutionPoisoned { .. } => "execution_poisoned",
        }
    }
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::ReadOnly { reason } => {
                write!(f, "server is read-only: {reason}")
            }
            ApplyError::WalAppend(e) => write!(f, "WAL append failed: {e}"),
            ApplyError::StoragePatch(e) => {
                write!(f, "segment store could not be patched or rebuilt: {e}")
            }
            ApplyError::ExecutionPoisoned { note } => {
                write!(f, "execution poisoned by unreadable segments: {note}")
            }
        }
    }
}

impl std::error::Error for ApplyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApplyError::WalAppend(e) | ApplyError::StoragePatch(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_transitions_and_degradation() {
        let mut h = Health::new();
        assert_eq!(h.mode(), ServingMode::ReadWrite);
        assert!(!h.is_degraded());

        h.note_snapshot_failure(&io::Error::other("disk hiccup"));
        assert!(h.is_degraded());
        assert!(!h.is_read_only());
        assert_eq!(h.snapshot_failures(), 1);
        assert_eq!(h.last_snapshot_error(), Some("disk hiccup"));

        h.note_snapshot_success();
        assert!(!h.is_degraded(), "a later snapshot clears the degradation");
        assert_eq!(h.snapshot_failures(), 1, "the count is cumulative");

        h.enter_read_only("ENOSPC".into());
        h.enter_read_only("second reason must not overwrite".into());
        assert!(h.is_read_only() && h.is_degraded());
        assert_eq!(h.read_only_reason(), Some("ENOSPC"));

        h.resume_writes();
        assert_eq!(h.mode(), ServingMode::ReadWrite);
        assert!(h.read_only_reason().is_none());
        assert_eq!(h.writes_resumed(), 1);
        h.resume_writes();
        assert_eq!(h.writes_resumed(), 1, "resume while writable is a no-op");
    }

    #[test]
    fn apply_error_kinds_are_stable() {
        assert_eq!(
            ApplyError::ReadOnly { reason: "x".into() }.kind(),
            "read_only"
        );
        assert_eq!(
            ApplyError::WalAppend(io::Error::other("a")).kind(),
            "wal_append"
        );
        assert_eq!(
            ApplyError::StoragePatch(io::Error::other("b")).kind(),
            "storage_patch"
        );
        assert_eq!(
            ApplyError::ExecutionPoisoned { note: "n".into() }.kind(),
            "execution_poisoned"
        );
    }

    #[test]
    fn apply_errors_format_their_cause() {
        let e = ApplyError::ReadOnly {
            reason: "disk full".into(),
        };
        assert!(e.to_string().contains("read-only"));
        let e = ApplyError::WalAppend(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ApplyError::ExecutionPoisoned {
            note: "segment 0..64 unreadable".into(),
        };
        assert!(e.to_string().contains("unreadable"));
    }
}
