/root/repo/target/debug/deps/slfe_core-fc277053751c4b0f.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

/root/repo/target/debug/deps/libslfe_core-fc277053751c4b0f.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

/root/repo/target/debug/deps/libslfe_core-fc277053751c4b0f.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/program.rs:
crates/core/src/result.rs:
crates/core/src/rrg.rs:
