/root/repo/target/debug/examples/engine_comparison-3b7be26bd8a88fb4.d: examples/engine_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libengine_comparison-3b7be26bd8a88fb4.rmeta: examples/engine_comparison.rs Cargo.toml

examples/engine_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
