//! One function per table/figure of the paper's evaluation section.
//!
//! Every function returns the rendered plain-text report (the `experiments` binary
//! prints it and stores it under `reports/`). Absolute numbers differ from the
//! paper — the substrate is a deterministic simulation over scaled-down dataset
//! proxies — but each function reproduces the corresponding experiment's structure:
//! same workloads, same comparisons, same metrics.

use crate::runner::{
    default_root, prepare_graph, run_app, run_on_dataset, AppRun, EngineKind, ExperimentContext,
};
use slfe_apps::{sssp, AppKind};
use slfe_cluster::{ClusterConfig, SchedulingPolicy};
use slfe_core::{EngineConfig, SlfeEngine};
use slfe_graph::datasets::Dataset;
use slfe_metrics::{inter_node_spread, intra_node_speedup, BusyTimes, Series, Table};

/// The seven real-graph proxies in the paper's table order.
fn datasets() -> [Dataset; 7] {
    [
        Dataset::Pokec,
        Dataset::Orkut,
        Dataset::LiveJournal,
        Dataset::Wiki,
        Dataset::Delicious,
        Dataset::STwitter,
        Dataset::Friendster,
    ]
}

/// Table 1: classification of applications by aggregation function.
pub fn table1(_ctx: &ExperimentContext) -> String {
    let mut table = Table::new(
        "Table 1: graph applications and their aggregation functions",
        &["application", "aggregation", "redundancy-reduction rule"],
    );
    for app in AppKind::ALL {
        let rule = match app.aggregation() {
            slfe_core::AggregationKind::MinMax => "start late (single ruler)",
            slfe_core::AggregationKind::Arithmetic => "finish early (multi ruler)",
        };
        table.add_row(&[app.name(), &app.aggregation().to_string(), rule]);
    }
    table.render()
}

/// Table 2: updates per vertex of SSSP in PowerLyra and Gemini (SLFE added for
/// contrast — ideally this number is 1).
pub fn table2(ctx: &ExperimentContext) -> String {
    let mut table = Table::new(
        "Table 2: SSSP updates per vertex (paper: PowerLyra 6.8-12.4, Gemini 4.5-9.9)",
        &["graph", "PowerLyra", "Gemini", "SLFE"],
    );
    for dataset in datasets() {
        let pl = run_on_dataset(ctx, EngineKind::PowerLyra, AppKind::Sssp, dataset);
        let gem = run_on_dataset(ctx, EngineKind::Gemini, AppKind::Sssp, dataset);
        let slfe = run_on_dataset(ctx, EngineKind::Slfe, AppKind::Sssp, dataset);
        table.add_row(&[
            dataset.abbreviation().to_string(),
            format!("{:.2}", pl.stats.updates_per_vertex()),
            format!("{:.2}", gem.stats.updates_per_vertex()),
            format!("{:.2}", slfe.stats.updates_per_vertex()),
        ]);
    }
    table.render()
}

/// Figure 2: percentage of early-converged (EC) vertices in PageRank.
pub fn fig2(ctx: &ExperimentContext) -> String {
    let mut series =
        Series::new("Figure 2: % of early-converged vertices in PageRank (paper average: 83%)");
    let mut sum = 0.0;
    for dataset in datasets() {
        // Measured on the unoptimised run so the EC population is the natural one.
        let run = run_on_dataset(ctx, EngineKind::SlfeNoRr, AppKind::PageRank, dataset);
        let pct = run.ec_fraction_90 * 100.0;
        sum += pct;
        series.push(dataset.abbreviation(), pct);
    }
    series.push("Avg", sum / datasets().len() as f64);
    series.render(50)
}

/// Figure 4: SSSP and CC computation split between pull and push mode, on 1 node and
/// 8 nodes, for the PK, LJ and FS proxies.
pub fn fig4(ctx: &ExperimentContext) -> String {
    let mut table = Table::new(
        "Figure 4: pull-mode share of edge computations (paper: >92% on 1 node, >73% on 8 nodes)",
        &["app", "graph", "nodes", "pull %", "push %"],
    );
    for app in [AppKind::Sssp, AppKind::ConnectedComponents] {
        for dataset in [Dataset::Pokec, Dataset::LiveJournal, Dataset::Friendster] {
            for nodes in [1usize, 8] {
                let graph = prepare_graph(app, &ctx.load(dataset));
                let run = run_app(EngineKind::Slfe, app, &graph, ctx.cluster_with_nodes(nodes));
                let (pull, push) = run.stats.trace.mode_computations();
                let total = (pull + push).max(1) as f64;
                table.add_row(&[
                    app.name().to_string(),
                    dataset.abbreviation().to_string(),
                    format!("{nodes}N"),
                    format!("{:.1}", 100.0 * pull as f64 / total),
                    format!("{:.1}", 100.0 * push as f64 / total),
                ]);
            }
        }
    }
    table.render()
}

/// Table 5: simulated 8-node runtime of PowerGraph, PowerLyra and SLFE for the five
/// applications over the seven proxies, with SLFE's speedup over the better of the
/// two baselines. PR/TR report per-iteration time, as the paper does.
pub fn table5(ctx: &ExperimentContext) -> String {
    let mut table = Table::new(
        "Table 5: simulated 8-node runtime in seconds (paper speedups: 5.7x-74.8x, geomean 25.4x)",
        &["app", "graph", "PowerG", "PowerL", "SLFE", "speedup"],
    );
    let mut speedup_product = 1.0f64;
    let mut speedup_count = 0usize;
    for app in AppKind::PAPER_EVALUATION {
        let per_iteration = matches!(app, AppKind::PageRank | AppKind::TunkRank);
        for dataset in datasets() {
            let graph = prepare_graph(app, &ctx.load(dataset));
            let pg = run_app(EngineKind::PowerGraph, app, &graph, ctx.cluster());
            let pl = run_app(EngineKind::PowerLyra, app, &graph, ctx.cluster());
            let slfe = run_app(EngineKind::Slfe, app, &graph, ctx.cluster());
            let norm = |r: &AppRun| {
                let secs = r.total_seconds();
                if per_iteration {
                    secs / r.stats.iterations.max(1) as f64
                } else {
                    secs
                }
            };
            let best_baseline = norm(&pg).min(norm(&pl));
            let speedup = best_baseline / norm(&slfe).max(1e-12);
            speedup_product *= speedup;
            speedup_count += 1;
            table.add_row(&[
                app.name().to_string(),
                dataset.abbreviation().to_string(),
                format!("{:.5}", norm(&pg)),
                format!("{:.5}", norm(&pl)),
                format!("{:.5}", norm(&slfe)),
                format!("{:.2}x", speedup),
            ]);
        }
    }
    let geomean = speedup_product.powf(1.0 / speedup_count.max(1) as f64);
    let mut out = table.render();
    out.push_str(&format!(
        "GEOMEAN speedup over the best GAS baseline: {geomean:.2}x\n"
    ));
    out
}

/// Figure 5: SLFE's improvement over Gemini, per application and graph, in counted
/// work (the machine-independent analogue of the paper's runtime improvement).
pub fn fig5(ctx: &ExperimentContext) -> String {
    let mut table = Table::new(
        "Figure 5: SLFE work reduction vs Gemini, percent (paper: 34-48% average per app)",
        &["app", "PK", "OK", "LJ", "WK", "DI", "ST", "FS", "average"],
    );
    for app in AppKind::PAPER_EVALUATION {
        let mut row = vec![app.name().to_string()];
        let mut sum = 0.0;
        for dataset in datasets() {
            let graph = prepare_graph(app, &ctx.load(dataset));
            let slfe = run_app(EngineKind::Slfe, app, &graph, ctx.cluster());
            let gemini = run_app(EngineKind::Gemini, app, &graph, ctx.cluster());
            let improvement = slfe.stats.work_improvement_percent_over(&gemini.stats);
            sum += improvement;
            row.push(format!("{improvement:.1}"));
        }
        row.push(format!("{:.1}", sum / datasets().len() as f64));
        table.add_row(&row);
    }
    table.render()
}

/// Figure 6: intra-node scalability — normalized parallel runtime as the worker
/// count grows, for CC and PR on the FS and LJ proxies, plus the Ligra and GraphChi
/// single-machine comparison.
pub fn fig6(ctx: &ExperimentContext) -> String {
    let workers_sweep = [1usize, 2, 4, 8, 16, 32];
    let mut out = String::new();
    for app in [AppKind::ConnectedComponents, AppKind::PageRank] {
        for dataset in [Dataset::Friendster, Dataset::LiveJournal] {
            let graph = prepare_graph(app, &ctx.load(dataset));
            let mut series = Series::new(format!(
                "Figure 6: {}-{} SLFE parallel speedup vs workers (paper: ~45x at 68 cores)",
                app.name(),
                dataset.abbreviation()
            ));
            let mut baseline_makespan = None;
            for &workers in &workers_sweep {
                let run = run_app(
                    EngineKind::Slfe,
                    app,
                    &graph,
                    ClusterConfig::new(1, workers),
                );
                let makespan: u64 = run.per_node_worker_work[0]
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(1);
                let base = *baseline_makespan.get_or_insert(makespan as f64);
                series.push(format!("{workers} workers"), base / makespan.max(1) as f64);
            }
            out.push_str(&series.render(40));
            out.push('\n');
        }
    }

    // Single-machine engine comparison (Figure 6a/6c flavour): simulated seconds.
    let graph = ctx.load(Dataset::LiveJournal);
    let mut series = Series::new(
        "Figure 6 (single machine): simulated seconds, PageRank on LJ (paper: GraphChi up to 508x slower)",
    );
    for engine in [EngineKind::Slfe, EngineKind::Ligra, EngineKind::GraphChi] {
        let run = run_app(engine, AppKind::PageRank, &graph, ClusterConfig::new(1, 4));
        series.push(engine.name(), run.total_seconds());
    }
    out.push_str(&series.render(40));
    out
}

/// Figure 7: inter-node scalability — normalized simulated runtime on 1..8 nodes
/// for PR and CC on the FS and WK proxies (SLFE vs Gemini vs PowerLyra), plus the
/// RMAT scale-out run on SLFE.
pub fn fig7(ctx: &ExperimentContext) -> String {
    let node_sweep = [1usize, 2, 4, 8];
    let mut out = String::new();
    for (app, dataset) in [
        (AppKind::PageRank, Dataset::Friendster),
        (AppKind::PageRank, Dataset::Wiki),
        (AppKind::ConnectedComponents, Dataset::Friendster),
        (AppKind::ConnectedComponents, Dataset::Wiki),
    ] {
        let graph = prepare_graph(app, &ctx.load(dataset));
        let mut table = Table::new(
            format!(
                "Figure 7: {}-{} normalized simulated runtime vs cluster size",
                app.name(),
                dataset.abbreviation()
            ),
            &["nodes", "SLFE", "Gemini", "PowerL"],
        );
        let mut base: Option<[f64; 3]> = None;
        for &nodes in &node_sweep {
            let cluster = ctx.cluster_with_nodes(nodes);
            let secs = [
                run_app(EngineKind::Slfe, app, &graph, cluster.clone()).total_seconds(),
                run_app(EngineKind::Gemini, app, &graph, cluster.clone()).total_seconds(),
                run_app(EngineKind::PowerLyra, app, &graph, cluster).total_seconds(),
            ];
            let b = *base.get_or_insert(secs);
            table.add_row(&[
                format!("{nodes}N"),
                format!("{:.3}", secs[0] / b[0].max(1e-12)),
                format!("{:.3}", secs[1] / b[1].max(1e-12)),
                format!("{:.3}", secs[2] / b[2].max(1e-12)),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }

    // RMAT scale-out (Figure 7e): SLFE only, normalized to 2 nodes.
    let rmat = Dataset::Rmat.load_scaled(ctx.scale * 64);
    let mut table = Table::new(
        "Figure 7e: SLFE on the synthetic RMAT graph (paper: 3.85x from 2N to 8N)",
        &["app", "2N", "4N", "8N"],
    );
    for app in AppKind::PAPER_EVALUATION {
        let graph = prepare_graph(app, &rmat);
        let mut row = vec![app.name().to_string()];
        let mut base = None;
        for nodes in [2usize, 4, 8] {
            let run = run_app(EngineKind::Slfe, app, &graph, ctx.cluster_with_nodes(nodes));
            let secs = run.total_seconds();
            let b = *base.get_or_insert(secs);
            row.push(format!("{:.3}", secs / b.max(1e-12)));
        }
        table.add_row(&row);
    }
    out.push_str(&table.render());
    out
}

/// Figure 8: preprocessing (RRG generation) overhead relative to the SSSP runtime,
/// compared with Gemini's runtime.
pub fn fig8(ctx: &ExperimentContext) -> String {
    let mut table = Table::new(
        "Figure 8: SSSP runtime and RRG overhead, normalized to Gemini (paper: 25.1% end-to-end win)",
        &["graph", "Gemini", "SLFE exec", "SLFE RRG overhead", "SLFE end-to-end"],
    );
    for dataset in datasets() {
        let graph = ctx.load(dataset);
        let gemini = run_on_dataset(ctx, EngineKind::Gemini, AppKind::Sssp, dataset);
        let engine = SlfeEngine::build(&graph, ctx.cluster(), EngineConfig::default());
        let slfe = engine.run(&sssp::SsspProgram {
            root: default_root(&graph),
        });
        let base = gemini.total_seconds().max(1e-12);
        table.add_row(&[
            dataset.abbreviation().to_string(),
            "1.000".to_string(),
            format!("{:.3}", slfe.stats.phases.execution_seconds / base),
            format!("{:.3}", slfe.stats.phases.preprocessing_seconds / base),
            format!("{:.3}", slfe.stats.phases.total_seconds() / base),
        ]);
    }
    table.render()
}

/// Figure 9: number of edge computations per iteration, with and without RR, for
/// SSSP, CC and PageRank on the FS and LJ proxies.
pub fn fig9(ctx: &ExperimentContext) -> String {
    let mut out = String::new();
    for app in [
        AppKind::Sssp,
        AppKind::ConnectedComponents,
        AppKind::PageRank,
    ] {
        for dataset in [Dataset::Friendster, Dataset::LiveJournal] {
            let graph = prepare_graph(app, &ctx.load(dataset));
            let with_rr = run_app(EngineKind::Slfe, app, &graph, ctx.cluster());
            let without_rr = run_app(EngineKind::SlfeNoRr, app, &graph, ctx.cluster());
            let mut table = Table::new(
                format!(
                    "Figure 9: {}-{} edge computations per iteration",
                    app.name(),
                    dataset.abbreviation()
                ),
                &["iteration", "w/ RR", "w/o RR"],
            );
            let a = with_rr.stats.trace.computations_per_iteration();
            let b = without_rr.stats.trace.computations_per_iteration();
            let rows = a.len().max(b.len());
            for i in 0..rows {
                table.add_row(&[
                    (i + 1).to_string(),
                    a.get(i).map(|(_, c)| c.to_string()).unwrap_or_default(),
                    b.get(i).map(|(_, c)| c.to_string()).unwrap_or_default(),
                ]);
            }
            out.push_str(&table.render());
            out.push_str(&format!(
                "totals: w/ RR = {}, w/o RR = {}\n\n",
                with_rr.stats.totals.edge_computations, without_rr.stats.totals.edge_computations
            ));
        }
    }
    out
}

/// Figure 10: (a) intra-node imbalance with and without work stealing;
/// (b) inter-node work spread with and without RR.
pub fn fig10(ctx: &ExperimentContext) -> String {
    let dataset = Dataset::LiveJournal;
    let mut intra = Table::new(
        "Figure 10a: work-stealing speedup of the busiest worker (paper: 15-21% runtime reduction)",
        &[
            "app",
            "makespan w/o stealing",
            "makespan w/ stealing",
            "speedup",
        ],
    );
    let mut inter = Table::new(
        "Figure 10b: inter-node work spread (paper: <7% w/o RR, ~2% extra with RR)",
        &["app", "spread w/o RR %", "spread w/ RR %"],
    );
    for app in AppKind::PAPER_EVALUATION {
        let graph = prepare_graph(app, &ctx.load(dataset));
        let root = default_root(&graph);

        // Intra-node: same run under the two scheduling policies.
        let mut makespans = Vec::new();
        for policy in [
            SchedulingPolicy::StaticBlocks,
            SchedulingPolicy::WorkStealing,
        ] {
            let config = EngineConfig::default().with_scheduling(policy);
            let engine = SlfeEngine::build(&graph, ClusterConfig::new(1, ctx.workers), config);
            let result = match app {
                AppKind::Sssp => engine.run(&sssp::SsspProgram { root }),
                AppKind::ConnectedComponents => {
                    engine.run(&slfe_apps::cc::CcProgram::for_graph(engine.graph()))
                }
                AppKind::WidestPath => {
                    engine.run(&slfe_apps::widestpath::WidestPathProgram { root })
                }
                AppKind::PageRank => engine.run(&slfe_apps::pagerank::PageRankProgram::new(
                    graph.num_vertices(),
                )),
                AppKind::TunkRank => engine.run(&slfe_apps::tunkrank::TunkRankProgram::default()),
                _ => unreachable!("only the paper's evaluation apps are swept"),
            };
            let worker_work: Vec<f64> = result.per_node_worker_work[0]
                .iter()
                .map(|&w| w as f64)
                .collect();
            makespans.push(BusyTimes::new(worker_work));
        }
        intra.add_row(&[
            app.name().to_string(),
            format!("{:.0}", makespans[0].makespan()),
            format!("{:.0}", makespans[1].makespan()),
            format!("{:.3}x", intra_node_speedup(&makespans[0], &makespans[1])),
        ]);

        // Inter-node: per-node work spread with and without RR.
        let with_rr = run_app(EngineKind::Slfe, app, &graph, ctx.cluster());
        let without_rr = run_app(EngineKind::SlfeNoRr, app, &graph, ctx.cluster());
        inter.add_row(&[
            app.name().to_string(),
            format!(
                "{:.1}",
                inter_node_spread(&without_rr.stats.per_node_work) * 100.0
            ),
            format!(
                "{:.1}",
                inter_node_spread(&with_rr.stats.per_node_work) * 100.0
            ),
        ]);
    }
    let mut out = intra.render();
    out.push('\n');
    out.push_str(&inter.render());
    out
}

/// Ablation study over the design choices DESIGN.md calls out: redundancy reduction
/// on/off, work stealing on/off, and the communication cost model.
pub fn ablation(ctx: &ExperimentContext) -> String {
    let dataset = Dataset::LiveJournal;
    let graph = ctx.load(dataset);
    let root = default_root(&graph);
    let mut table = Table::new(
        "Ablation: SSSP on the LJ proxy, 8 nodes",
        &["configuration", "work units", "messages", "sim. seconds"],
    );
    let configs: [(&str, EngineConfig, ClusterConfig); 4] = [
        (
            "RR + stealing (SLFE)",
            EngineConfig::default(),
            ctx.cluster(),
        ),
        (
            "no RR (Gemini-like)",
            EngineConfig::without_rr(),
            ctx.cluster(),
        ),
        (
            "RR, static scheduling",
            EngineConfig::default().with_scheduling(SchedulingPolicy::StaticBlocks),
            ctx.cluster(),
        ),
        (
            "RR, slow network",
            EngineConfig::default(),
            ctx.cluster()
                .with_comm_cost(slfe_cluster::CommCostModel::slow_ethernet()),
        ),
    ];
    for (name, config, cluster) in configs {
        let engine = SlfeEngine::build(&graph, cluster, config);
        let result = engine.run(&sssp::SsspProgram { root });
        table.add_row(&[
            name.to_string(),
            result.stats.totals.work().to_string(),
            result.stats.totals.messages_sent.to_string(),
            format!("{:.6}", result.stats.phases.total_seconds()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentContext {
        ExperimentContext {
            scale: 128_000,
            nodes: 2,
            workers: 2,
        }
    }

    #[test]
    fn table1_lists_every_application() {
        let report = table1(&tiny());
        for app in AppKind::ALL {
            assert!(report.contains(app.name()), "missing {app}");
        }
    }

    #[test]
    fn table2_has_one_row_per_dataset() {
        let report = table2(&tiny());
        for dataset in datasets() {
            assert!(report.contains(dataset.abbreviation()));
        }
    }

    #[test]
    fn fig2_reports_percentages_and_average() {
        let report = fig2(&tiny());
        assert!(report.contains("Avg"));
        assert!(report.contains("OK"));
    }

    #[test]
    fn ablation_covers_all_configurations() {
        let report = ablation(&tiny());
        assert!(report.contains("no RR"));
        assert!(report.contains("static scheduling"));
        assert!(report.contains("slow network"));
    }
}
