/root/repo/target/debug/deps/scaling-f878b1a8fa1c3c9e.d: crates/bench/benches/scaling.rs

/root/repo/target/debug/deps/libscaling-f878b1a8fa1c3c9e.rmeta: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
