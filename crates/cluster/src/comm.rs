//! Communication accounting and the network cost model.
//!
//! Engines never open sockets: every remote vertex update is recorded against a
//! [`CommTracker`] which counts messages and bytes per (source node, destination
//! node) pair. The [`CommCostModel`] then converts those counts into simulated
//! network seconds, which the harness adds to the computation time for experiments
//! that depend on the computation/communication trade-off (Figures 4, 7, 10b).

use std::sync::Mutex;

/// Cost model for inter-node traffic.
///
/// `seconds = messages * per_message_seconds + bytes * per_byte_seconds`
///
/// The defaults approximate the paper's testbed: vertex updates are batched per
/// node pair per iteration, so the effective per-update overhead is tens of
/// nanoseconds (not a full RDMA round trip), and the line rate is 100 Gb/s
/// InfiniBand (≈ 12.5 GB/s → 8e-11 s per byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCostModel {
    /// Fixed cost per message, in seconds.
    pub per_message_seconds: f64,
    /// Cost per payload byte, in seconds.
    pub per_byte_seconds: f64,
}

impl Default for CommCostModel {
    fn default() -> Self {
        Self {
            per_message_seconds: 5.0e-8,
            per_byte_seconds: 8.0e-11,
        }
    }
}

impl CommCostModel {
    /// A zero-cost network (used to isolate computation effects in ablations).
    pub fn free() -> Self {
        Self {
            per_message_seconds: 0.0,
            per_byte_seconds: 0.0,
        }
    }

    /// A deliberately slow network (10 µs per message, ~1 Gb/s), used by ablation
    /// benches to show how RR's message reduction matters more on slower fabrics.
    pub fn slow_ethernet() -> Self {
        Self {
            per_message_seconds: 1.0e-5,
            per_byte_seconds: 8.0e-9,
        }
    }

    /// Simulated seconds for a traffic volume.
    pub fn seconds(&self, messages: u64, bytes: u64) -> f64 {
        messages as f64 * self.per_message_seconds + bytes as f64 * self.per_byte_seconds
    }
}

/// Aggregate communication statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommStats {
    /// Total messages that crossed node boundaries.
    pub messages: u64,
    /// Total bytes those messages carried.
    pub bytes: u64,
    /// Messages whose source and destination node were the same (free local
    /// updates; tracked for completeness but not charged by the cost model).
    pub local_updates: u64,
}

/// Per node-pair message tracker shared by all workers of a run.
#[derive(Debug)]
pub struct CommTracker {
    num_nodes: usize,
    /// messages[src * num_nodes + dst], bytes[src * num_nodes + dst]
    inner: Mutex<TrackerInner>,
}

#[derive(Debug, Default)]
struct TrackerInner {
    messages: Vec<u64>,
    bytes: Vec<u64>,
    local_updates: u64,
}

impl CommTracker {
    /// Create a tracker for a cluster of `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes >= 1);
        Self {
            num_nodes,
            inner: Mutex::new(TrackerInner {
                messages: vec![0; num_nodes * num_nodes],
                bytes: vec![0; num_nodes * num_nodes],
                local_updates: 0,
            }),
        }
    }

    /// Number of nodes this tracker covers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Record an update travelling from `src_node` to `dst_node` with a payload of
    /// `bytes` bytes. Same-node updates are counted separately and carry no cost.
    pub fn record(&self, src_node: usize, dst_node: usize, bytes: u64) {
        assert!(src_node < self.num_nodes && dst_node < self.num_nodes);
        let mut inner = self.inner.lock().unwrap();
        if src_node == dst_node {
            inner.local_updates += 1;
        } else {
            let idx = src_node * self.num_nodes + dst_node;
            inner.messages[idx] += 1;
            inner.bytes[idx] += bytes;
        }
    }

    /// Record `messages` pre-aggregated updates travelling from `src_node` to
    /// `dst_node`, carrying `bytes` payload bytes in total. Used by the parallel
    /// executor to flush per-worker message scratch in one lock acquisition per
    /// node pair instead of one per edge.
    pub fn record_many(&self, src_node: usize, dst_node: usize, messages: u64, bytes: u64) {
        assert!(src_node < self.num_nodes && dst_node < self.num_nodes);
        if messages == 0 && bytes == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if src_node == dst_node {
            inner.local_updates += messages;
        } else {
            let idx = src_node * self.num_nodes + dst_node;
            inner.messages[idx] += messages;
            inner.bytes[idx] += bytes;
        }
    }

    /// Aggregate statistics across all node pairs.
    pub fn stats(&self) -> CommStats {
        let inner = self.inner.lock().unwrap();
        CommStats {
            messages: inner.messages.iter().sum(),
            bytes: inner.bytes.iter().sum(),
            local_updates: inner.local_updates,
        }
    }

    /// Messages sent from `src_node` to `dst_node`.
    pub fn messages_between(&self, src_node: usize, dst_node: usize) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.messages[src_node * self.num_nodes + dst_node]
    }

    /// Total messages *received* by each node — the quantity that skews inter-node
    /// balance in push mode (paper §4.5).
    pub fn per_node_incoming(&self) -> Vec<u64> {
        let inner = self.inner.lock().unwrap();
        let mut incoming = vec![0u64; self.num_nodes];
        for src in 0..self.num_nodes {
            for (dst, total) in incoming.iter_mut().enumerate() {
                *total += inner.messages[src * self.num_nodes + dst];
            }
        }
        incoming
    }

    /// Reset all counts.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.messages.iter_mut().for_each(|m| *m = 0);
        inner.bytes.iter_mut().for_each(|b| *b = 0);
        inner.local_updates = 0;
    }

    /// Simulated seconds for the traffic recorded so far under `model`.
    pub fn simulated_seconds(&self, model: &CommCostModel) -> f64 {
        let stats = self.stats();
        model.seconds(stats.messages, stats.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_sums_message_and_byte_cost() {
        let m = CommCostModel {
            per_message_seconds: 1e-6,
            per_byte_seconds: 1e-9,
        };
        let s = m.seconds(1000, 1_000_000);
        assert!((s - (1e-3 + 1e-3)).abs() < 1e-12);
        assert_eq!(CommCostModel::free().seconds(1_000_000, 1_000_000), 0.0);
    }

    #[test]
    fn slow_network_costs_more_than_default() {
        let fast = CommCostModel::default().seconds(1000, 8000);
        let slow = CommCostModel::slow_ethernet().seconds(1000, 8000);
        assert!(slow > fast);
    }

    #[test]
    fn tracker_separates_local_and_remote() {
        let t = CommTracker::new(2);
        t.record(0, 0, 8);
        t.record(0, 1, 8);
        t.record(1, 0, 16);
        let stats = t.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.bytes, 24);
        assert_eq!(stats.local_updates, 1);
        assert_eq!(t.messages_between(0, 1), 1);
        assert_eq!(t.messages_between(1, 0), 1);
        assert_eq!(t.messages_between(0, 0), 0);
    }

    #[test]
    fn per_node_incoming_sums_columns() {
        let t = CommTracker::new(3);
        t.record(0, 2, 8);
        t.record(1, 2, 8);
        t.record(2, 0, 8);
        assert_eq!(t.per_node_incoming(), vec![1, 0, 2]);
    }

    #[test]
    fn reset_clears_counts() {
        let t = CommTracker::new(2);
        t.record(0, 1, 100);
        t.reset();
        assert_eq!(t.stats(), CommStats::default());
    }

    #[test]
    fn simulated_seconds_uses_the_model() {
        let t = CommTracker::new(2);
        for _ in 0..10 {
            t.record(0, 1, 8);
        }
        let model = CommCostModel {
            per_message_seconds: 1.0,
            per_byte_seconds: 0.0,
        };
        assert!((t.simulated_seconds(&model) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tracker_is_thread_safe() {
        use std::sync::Arc;
        let t = Arc::new(CommTracker::new(4));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        t.record(i, (i + 1) % 4, 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.stats().messages, 2000);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_panics() {
        let t = CommTracker::new(2);
        t.record(0, 5, 8);
    }
}
