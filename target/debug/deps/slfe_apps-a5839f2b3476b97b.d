/root/repo/target/debug/deps/slfe_apps-a5839f2b3476b97b.d: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/cc.rs crates/apps/src/heat.rs crates/apps/src/numpaths.rs crates/apps/src/pagerank.rs crates/apps/src/registry.rs crates/apps/src/spmv.rs crates/apps/src/sssp.rs crates/apps/src/tunkrank.rs crates/apps/src/widestpath.rs

/root/repo/target/debug/deps/libslfe_apps-a5839f2b3476b97b.rlib: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/cc.rs crates/apps/src/heat.rs crates/apps/src/numpaths.rs crates/apps/src/pagerank.rs crates/apps/src/registry.rs crates/apps/src/spmv.rs crates/apps/src/sssp.rs crates/apps/src/tunkrank.rs crates/apps/src/widestpath.rs

/root/repo/target/debug/deps/libslfe_apps-a5839f2b3476b97b.rmeta: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/cc.rs crates/apps/src/heat.rs crates/apps/src/numpaths.rs crates/apps/src/pagerank.rs crates/apps/src/registry.rs crates/apps/src/spmv.rs crates/apps/src/sssp.rs crates/apps/src/tunkrank.rs crates/apps/src/widestpath.rs

crates/apps/src/lib.rs:
crates/apps/src/bfs.rs:
crates/apps/src/cc.rs:
crates/apps/src/heat.rs:
crates/apps/src/numpaths.rs:
crates/apps/src/pagerank.rs:
crates/apps/src/registry.rs:
crates/apps/src/spmv.rs:
crates/apps/src/sssp.rs:
crates/apps/src/tunkrank.rs:
crates/apps/src/widestpath.rs:
