//! Minimal JSON emission helpers shared by every `BENCH_*.json`-writing bin.
//!
//! The bench bins hand-assemble their JSON (no serde in the offline
//! container). Two classes of bug crept in repeatedly: string fields
//! (`git_commit`, labels, notes) interpolated without escaping, and simulated
//! or derived floats (speedups, seconds) printed as bare `NaN`/`inf`, neither
//! of which is valid JSON. Every string and float a bin emits must go through
//! [`string`] / [`float`] (or [`float_fixed`]), which escape and guard.

/// A JSON string literal: quoted, with `"`/`\\` and control characters
/// escaped.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number from a float: the shortest round-trip representation for
/// finite values, `null` for `NaN`/`±inf` (bare `NaN` is not JSON).
pub fn float(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        // `{}` prints integral floats without a point; keep them numbers but
        // unambiguous floats for downstream readers.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// [`float`] with fixed precision for finite values.
pub fn float_fixed(x: f64, precision: usize) -> String {
    if x.is_finite() {
        format!("{x:.precision$}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_quoted_and_escaped() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(string("bell\u{7}"), "\"bell\\u0007\"");
        assert_eq!(string(""), "\"\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
        assert_eq!(float(f64::NEG_INFINITY), "null");
        assert_eq!(float_fixed(f64::NAN, 6), "null");
        assert_eq!(float_fixed(f64::NEG_INFINITY, 2), "null");
    }

    #[test]
    fn finite_floats_stay_numbers() {
        assert_eq!(float(1.5), "1.5");
        assert_eq!(float(2.0), "2.0");
        assert_eq!(float(-0.25), "-0.25");
        assert_eq!(float_fixed(1.23456789, 4), "1.2346");
        assert_eq!(float_fixed(3.0, 6), "3.000000");
    }

    #[test]
    fn emitted_fields_survive_a_json_sanity_scan() {
        // A smoke "parser": balanced quotes, no bare NaN/inf tokens.
        let doc = format!(
            "{{\"label\": {}, \"speedup\": {}, \"seconds\": {}}}",
            string("odd \"label\"\n"),
            float(f64::INFINITY),
            float_fixed(0.125, 6)
        );
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
        let unescaped_quotes = doc
            .as_bytes()
            .iter()
            .enumerate()
            .filter(|&(i, &b)| b == b'"' && (i == 0 || doc.as_bytes()[i - 1] != b'\\'))
            .count();
        assert_eq!(unescaped_quotes % 2, 0);
    }
}
