//! Out-of-core adjacency storage: disk-resident CSR/CSC segments served
//! through a byte-budgeted buffer pool.
//!
//! The in-memory [`Adjacency`] caps graph size at RAM. This module adds the
//! GraphChi-style alternative the real engine needs for graphs past memory:
//!
//! * [`AdjacencyStore`] — the abstraction the engine's pull/push phases
//!   traverse. The in-memory [`Adjacency`] implements it at zero cost (a view
//!   is just `&Adjacency`), so the historical execution paths are untouched.
//! * [`SegmentedStore`] — one adjacency direction written to disk in
//!   fixed-byte-budget **segments**: a contiguous vertex range's local offset
//!   array plus its neighbor/weight arrays, self-contained so a segment can be
//!   rewritten without shifting its siblings. The in-RAM footprint is only the
//!   segment *directory* (a few dozen bytes per segment).
//! * [`BufferPool`] — a clock (second-chance) cache of decoded segments with a
//!   byte budget. Faults and bytes read are counted
//!   ([`PoolCounters`]), and pinned segments (ones a worker currently
//!   traverses) are never evicted.
//! * [`GraphStorage`] — both directions of one graph version sharing a single
//!   pool, plus [`GraphStorage::patched`]: the segment analogue of
//!   [`Adjacency::patched`] — after an edge-update batch only the segments
//!   covering dirty vertices are rewritten (appended to the store file, the
//!   directory repointed), every clean segment's bytes stay where they are and
//!   its cached frame stays warm.
//!
//! Traversal streams through a [`StreamCursor`]: the engine walks each chunk's
//! vertices in ascending id order, so the cursor holds (pins) exactly one
//! segment at a time per worker and faults a segment only when a vertex
//! actually needs it — skipped chunks and inactive sources fault nothing,
//! which is what makes the chunk-level activity summaries double as the I/O
//! planner.
//!
//! Segment lists are stored in the same sorted-by-neighbor order the
//! in-memory structure maintains, so a traversal through either store visits
//! byte-identical `(neighbor, weight)` sequences — the engine-level
//! bit-for-bit equivalence tests rest on that.

use crate::csr::Adjacency;
use crate::faults::{is_disk_full, FaultAction, FaultInjector, FaultSite, RetryPolicy};
use crate::io::binary::crc32;
use crate::types::{EdgeWeight, VertexId};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use slfe_metrics::telemetry::{SpanEvent, Telemetry, HIST_SEGMENT_FAULT};

/// Abstract adjacency access for the engine's traversal phases.
///
/// `view(lo, hi)` pins whatever backing storage serves vertices `lo..hi`;
/// `view_span(v)` reports the natural streaming granule containing `v` (the
/// whole graph for the in-memory store, one segment for a [`SegmentedStore`]),
/// which is what [`StreamCursor`] advances by.
pub trait AdjacencyStore: Sync {
    /// A pinned window of the store serving some vertex range.
    type View<'a>: AdjacencyView
    where
        Self: 'a;

    /// Pin the storage backing vertices `lo..hi` (half-open) and return a view.
    fn view(&self, lo: VertexId, hi: VertexId) -> Self::View<'_>;

    /// The half-open vertex range of the streaming granule containing `v`.
    fn view_span(&self, v: VertexId) -> (VertexId, VertexId);

    /// Number of vertices the store covers.
    fn store_num_vertices(&self) -> usize;
}

/// A pinned window of adjacency data; `list(v)` is only valid for vertices
/// inside the range the view was created for.
pub trait AdjacencyView {
    /// Neighbor list and parallel weights of `v`, sorted by neighbor id.
    fn list(&self, v: VertexId) -> (&[VertexId], &[EdgeWeight]);
}

impl AdjacencyStore for Adjacency {
    type View<'a> = &'a Adjacency;

    fn view(&self, _lo: VertexId, _hi: VertexId) -> &Adjacency {
        self
    }

    fn view_span(&self, _v: VertexId) -> (VertexId, VertexId) {
        (0, self.num_vertices() as VertexId)
    }

    fn store_num_vertices(&self) -> usize {
        self.num_vertices()
    }
}

impl AdjacencyView for &Adjacency {
    #[inline]
    fn list(&self, v: VertexId) -> (&[VertexId], &[EdgeWeight]) {
        (self.neighbors(v), self.weights(v))
    }
}

/// Ascending-order adjacency reader over any [`AdjacencyStore`]: re-views the
/// store whenever the requested vertex leaves the current granule. One cursor
/// per worker pins at most one segment at a time.
pub struct StreamCursor<'a, S: AdjacencyStore> {
    store: &'a S,
    /// Current granule: `(lo, hi, view)`.
    current: Option<(VertexId, VertexId, S::View<'a>)>,
}

impl<'a, S: AdjacencyStore> StreamCursor<'a, S> {
    /// A cursor with nothing pinned yet.
    pub fn new(store: &'a S) -> Self {
        Self {
            store,
            current: None,
        }
    }

    /// Neighbor list and weights of `v`, faulting the granule containing `v`
    /// if the cursor is not already positioned on it.
    #[inline]
    pub fn list(&mut self, v: VertexId) -> (&[VertexId], &[EdgeWeight]) {
        let outside = match &self.current {
            Some((lo, hi, _)) => v < *lo || v >= *hi,
            None => true,
        };
        if outside {
            // Unpin the old granule *before* faulting the next one, so each
            // cursor holds at most one segment at any instant — the pinned-set
            // bound (`total_workers` segments) the budget sizing docs promise.
            self.current = None;
            let (lo, hi) = self.store.view_span(v);
            debug_assert!(lo <= v && v < hi, "granule must contain the vertex");
            self.current = Some((lo, hi, self.store.view(lo, hi)));
        }
        self.current.as_ref().expect("positioned above").2.list(v)
    }
}

/// Decoded payload of one segment, shared between the pool and pinning views.
#[derive(Debug)]
pub struct SegmentData {
    /// First vertex covered.
    v_start: VertexId,
    /// Local offsets: vertex `v_start + i` owns
    /// `targets[offsets[i]..offsets[i+1]]` (and the parallel weights).
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    weights: Vec<EdgeWeight>,
}

impl SegmentData {
    /// Number of vertices covered.
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Resident footprint in bytes.
    fn resident_bytes(&self) -> u64 {
        (self.offsets.len() * 4 + self.targets.len() * 4 + self.weights.len() * 4) as u64
    }

    /// Neighbor list + weights of `v` (must lie inside this segment).
    #[inline]
    fn list(&self, v: VertexId) -> (&[VertexId], &[EdgeWeight]) {
        let i = (v - self.v_start) as usize;
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Serialize to the on-disk little-endian layout (offsets, targets,
    /// weights) followed by a CRC32 of the payload, so a torn, short or
    /// bit-flipped segment read is detected at decode time instead of being
    /// traversed as garbage adjacency.
    fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.resident_bytes() as usize + 4);
        for &o in &self.offsets {
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        for &t in &self.targets {
            bytes.extend_from_slice(&t.to_le_bytes());
        }
        for &w in &self.weights {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Decode the on-disk layout; counts come from the directory entry.
    /// Returns `None` when the byte length does not match the directory or
    /// the trailing CRC32 does not match the payload.
    fn decode(meta: &SegmentMeta, bytes: &[u8]) -> Option<Self> {
        let nv = meta.num_vertices as usize;
        let ne = meta.num_edges as usize;
        if bytes.len() != (nv + 1) * 4 + ne * 8 + 4 {
            return None;
        }
        let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
        if crc32(payload) != stored {
            return None;
        }
        let word = |i: usize| -> [u8; 4] { payload[i * 4..i * 4 + 4].try_into().unwrap() };
        let offsets = (0..nv + 1).map(|i| u32::from_le_bytes(word(i))).collect();
        let targets = (0..ne)
            .map(|i| VertexId::from_le_bytes(word(nv + 1 + i)))
            .collect();
        let weights = (0..ne)
            .map(|i| EdgeWeight::from_le_bytes(word(nv + 1 + ne + i)))
            .collect();
        Some(Self {
            v_start: meta.v_start,
            offsets,
            targets,
            weights,
        })
    }

    /// Placeholder for a segment that could be neither read nor rebuilt: the
    /// right vertex range with every list empty. Only ever served on a
    /// poisoned run, whose result the server discards.
    fn empty_for(meta: &SegmentMeta) -> Self {
        Self {
            v_start: meta.v_start,
            offsets: vec![0; meta.num_vertices as usize + 1],
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }
}

/// One directory entry: where a segment's bytes live and what they cover.
/// The directory is the only per-segment state that stays in RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegmentMeta {
    /// First vertex covered (segments are contiguous and sorted).
    v_start: VertexId,
    /// Vertices covered.
    num_vertices: u32,
    /// Edges stored.
    num_edges: u64,
    /// Byte offset into the store file. Patching appends rewritten segments,
    /// so an offset uniquely identifies one immutable version of a segment's
    /// bytes — which is what lets patched generations share the buffer pool
    /// without invalidating clean segments' cached frames.
    file_offset: u64,
    /// Byte length on disk.
    bytes: u64,
}

impl SegmentMeta {
    fn v_end(&self) -> VertexId {
        self.v_start + self.num_vertices
    }

    /// In-RAM bytes of the decoded segment (the on-disk `bytes` minus the
    /// trailing CRC): what the buffer pool reserves before loading.
    fn decoded_bytes(&self) -> u64 {
        (self.num_vertices as u64 + 1) * 4 + self.num_edges * 8
    }
}

/// Cache-wide fault statistics, all monotone counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Segments faulted from disk (cache misses).
    pub segments_faulted: u64,
    /// Bytes read from disk by those faults.
    pub segment_bytes_read: u64,
    /// Cache hits — `get` calls satisfied without touching disk, so
    /// `segment_hits + segments_faulted` equals total `get` calls.
    pub segment_hits: u64,
    /// Frames the clock hand reclaimed (budget-pressure evictions; explicit
    /// invalidations after patches/compaction are not counted here).
    pub segments_evicted: u64,
}

impl PoolCounters {
    /// Hit rate over all `get` calls, in `[0, 1]`; `None` before any access.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.segment_hits + self.segments_faulted;
        if total == 0 {
            None
        } else {
            Some(self.segment_hits as f64 / total as f64)
        }
    }
}

/// One resident cache frame.
#[derive(Debug)]
struct Frame {
    key: (u64, u64),
    data: Arc<SegmentData>,
    bytes: u64,
    /// Clock reference bit: set on every hit, cleared as the hand passes.
    referenced: bool,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// `(file id, file offset)` → index into `frames`.
    map: HashMap<(u64, u64), usize>,
    frames: Vec<Option<Frame>>,
    free: Vec<usize>,
    resident_bytes: u64,
    hand: usize,
}

/// Clock (second-chance) segment cache with a byte budget.
///
/// Eviction runs *before* a faulted segment is inserted, so resident bytes
/// never exceed the budget as long as the segments currently pinned by
/// traversal cursors (one per worker) plus the incoming segment fit within
/// it; a pinned frame (its `Arc` held outside the pool) is never evicted.
#[derive(Debug)]
pub struct BufferPool {
    budget_bytes: u64,
    inner: Mutex<PoolInner>,
    faults: AtomicU64,
    bytes_read: AtomicU64,
    peak_resident: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    /// Optional telemetry hub for fault spans/latency histograms. Guarded by
    /// `has_telemetry` so the common un-instrumented path never locks.
    telemetry: Mutex<Option<Arc<Telemetry>>>,
    has_telemetry: AtomicBool,
}

impl BufferPool {
    /// An empty pool with the given byte budget.
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            inner: Mutex::new(PoolInner::default()),
            faults: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            telemetry: Mutex::new(None),
            has_telemetry: AtomicBool::new(false),
        }
    }

    /// Attach a telemetry hub; fault latencies will be recorded as spans and
    /// into the segment-fault histogram. Disabled hubs are ignored, keeping
    /// the un-instrumented fast path free of clock reads.
    pub fn set_telemetry(&self, telemetry: &Arc<Telemetry>) {
        if telemetry.enabled() {
            *self.telemetry.lock().unwrap() = Some(Arc::clone(telemetry));
            self.has_telemetry.store(true, Ordering::Release);
        }
    }

    /// The attached (enabled) telemetry hub, if any.
    pub fn telemetry_handle(&self) -> Option<Arc<Telemetry>> {
        if !self.has_telemetry.load(Ordering::Acquire) {
            return None;
        }
        self.telemetry.lock().unwrap().clone()
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Monotone fault statistics.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            segments_faulted: self.faults.load(Ordering::Relaxed),
            segment_bytes_read: self.bytes_read.load(Ordering::Relaxed),
            segment_hits: self.hits.load(Ordering::Relaxed),
            segments_evicted: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().unwrap().resident_bytes
    }

    /// High-water mark of resident bytes.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident.load(Ordering::Relaxed)
    }

    /// Fetch the segment identified by `key`, loading it through `load` on a
    /// miss. The returned `Arc` pins the frame against eviction.
    ///
    /// The frame's budget (`expected_bytes`, the decoded size known from the
    /// directory) is **reserved before** the load and **released if the load
    /// fails**, so `resident_bytes` can never drift above the budget no
    /// matter how many reads fail mid-fault — a failed load leaves the pool's
    /// accounting exactly where it was.
    fn get(
        &self,
        key: (u64, u64),
        expected_bytes: u64,
        load: impl FnOnce() -> io::Result<(SegmentData, u64)>,
    ) -> io::Result<Arc<SegmentData>> {
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(&slot) = inner.map.get(&key) {
                let frame = inner.frames[slot].as_mut().expect("mapped frame");
                frame.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&frame.data));
            }
            // Reserve the incoming frame's bytes now, evicting to make room.
            Self::evict_until(
                &mut inner,
                self.budget_bytes.saturating_sub(expected_bytes),
                &self.evictions,
            );
            inner.resident_bytes += expected_bytes;
        }
        // Miss: read and decode *outside* the lock, so workers faulting
        // distinct segments stream from disk concurrently — in the
        // pool-cycling regime (budget far below footprint) faulting dominates
        // the iteration, and serialising it would collapse parallel traversal
        // to one thread's I/O throughput. Two workers racing on the same
        // segment may both read it; the re-check below keeps one copy and the
        // fault counters stay honest (both reads really happened).
        let telemetry = self.telemetry_handle();
        let fault_start = telemetry.as_ref().map(|t| t.clock().now_ns());
        let (data, disk_bytes) = match load() {
            Ok(loaded) => loaded,
            Err(e) => {
                // Release the reservation: the frame never materialised.
                self.inner.lock().unwrap().resident_bytes -= expected_bytes;
                return Err(e);
            }
        };
        if let (Some(t), Some(start_ns)) = (&telemetry, fault_start) {
            let dur_ns = t.clock().now_ns().saturating_sub(start_ns);
            t.push_span(SpanEvent {
                name: "segment_fault",
                cat: "storage",
                track: Telemetry::lane(),
                start_ns,
                dur_ns,
            });
            t.record_ns(HIST_SEGMENT_FAULT, dur_ns);
        }
        self.faults.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(disk_bytes, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        if let Some(&slot) = inner.map.get(&key) {
            // A racing worker inserted the same segment while we loaded:
            // keep its copy, drop ours, hand back our reservation.
            inner.resident_bytes -= expected_bytes;
            let frame = inner.frames[slot].as_mut().expect("mapped frame");
            frame.referenced = true;
            return Ok(Arc::clone(&frame.data));
        }
        let data = Arc::new(data);
        let bytes = data.resident_bytes();
        // Trade the reservation for the actual decoded size (equal in
        // practice — both derive from the directory entry).
        inner.resident_bytes = inner.resident_bytes - expected_bytes + bytes;
        let slot = inner.free.pop().unwrap_or_else(|| {
            inner.frames.push(None);
            inner.frames.len() - 1
        });
        inner.frames[slot] = Some(Frame {
            key,
            data: Arc::clone(&data),
            bytes,
            referenced: true,
        });
        inner.map.insert(key, slot);
        self.peak_resident
            .fetch_max(inner.resident_bytes, Ordering::Relaxed);
        Ok(data)
    }

    /// Insert an already-decoded segment (a quarantine rebuild holds the data
    /// in hand — re-reading the replacement it just wrote would be wasted
    /// I/O). Same budget bookkeeping as a loaded frame; a no-op if the key is
    /// already resident.
    fn insert(&self, key: (u64, u64), data: Arc<SegmentData>) {
        let bytes = data.resident_bytes();
        let mut inner = self.inner.lock().unwrap();
        if inner.map.contains_key(&key) {
            return;
        }
        Self::evict_until(
            &mut inner,
            self.budget_bytes.saturating_sub(bytes),
            &self.evictions,
        );
        let slot = inner.free.pop().unwrap_or_else(|| {
            inner.frames.push(None);
            inner.frames.len() - 1
        });
        inner.frames[slot] = Some(Frame {
            key,
            data,
            bytes,
            referenced: true,
        });
        inner.map.insert(key, slot);
        inner.resident_bytes += bytes;
        self.peak_resident
            .fetch_max(inner.resident_bytes, Ordering::Relaxed);
    }

    /// Clock-evict unpinned frames until resident bytes fit `target`, or every
    /// remaining frame is pinned/just-referenced twice around.
    fn evict_until(inner: &mut PoolInner, target: u64, evicted: &AtomicU64) {
        if inner.frames.is_empty() {
            return;
        }
        let mut sweeps = 0usize;
        let limit = inner.frames.len() * 2;
        while inner.resident_bytes > target && sweeps < limit {
            sweeps += 1;
            let slot = inner.hand % inner.frames.len();
            inner.hand = (inner.hand + 1) % inner.frames.len();
            let evict = match &mut inner.frames[slot] {
                Some(frame) => {
                    if frame.referenced {
                        frame.referenced = false;
                        false
                    } else {
                        // Pinned iff a traversal still holds the Arc.
                        Arc::strong_count(&frame.data) == 1
                    }
                }
                None => false,
            };
            if evict {
                let frame = inner.frames[slot].take().expect("checked above");
                inner.map.remove(&frame.key);
                inner.resident_bytes -= frame.bytes;
                inner.free.push(slot);
                evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop every unpinned frame belonging to `file_id` — compaction retired
    /// the whole file, so none of its segments can ever be requested again.
    /// Pinned frames (a traversal still holds the `Arc`, and with it the old
    /// `StoreFile`) are left for the clock to reclaim.
    fn invalidate_file(&self, file_id: u64) {
        let keys: Vec<(u64, u64)> = {
            let inner = self.inner.lock().unwrap();
            inner
                .map
                .keys()
                .filter(|(fid, _)| *fid == file_id)
                .copied()
                .collect()
        };
        self.invalidate(keys);
    }

    /// Drop a set of frames outright (their segments were superseded by a
    /// patch); pinned frames are left for the clock to reclaim.
    fn invalidate(&self, keys: impl IntoIterator<Item = (u64, u64)>) {
        let mut inner = self.inner.lock().unwrap();
        for key in keys {
            if let Some(&slot) = inner.map.get(&key) {
                if inner.frames[slot]
                    .as_ref()
                    .is_some_and(|f| Arc::strong_count(&f.data) == 1)
                {
                    let frame = inner.frames[slot].take().expect("mapped frame");
                    inner.map.remove(&frame.key);
                    inner.resident_bytes -= frame.bytes;
                    inner.free.push(slot);
                }
            }
        }
    }
}

/// A process-created backing directory, removed when the last store file
/// inside it drops (user-supplied directories are never removed).
#[derive(Debug)]
struct StorageDir {
    path: PathBuf,
}

impl Drop for StorageDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir(&self.path);
    }
}

/// Shared append-only backing file of one adjacency direction; generations of
/// patched stores share it, and its bytes are deleted when the last one drops.
#[derive(Debug)]
struct StoreFile {
    file: File,
    path: PathBuf,
    /// Distinguishes files inside the shared pool's key space.
    id: u64,
    /// Next append offset. Lives on the shared file (not the store) so that
    /// patches taken from *any* generation reserve disjoint byte ranges.
    append_cursor: AtomicU64,
    /// Keeps an auto-created parent directory alive; dropped — and the
    /// directory removed — after the file itself is deleted below. Held for
    /// its `Drop` ordering only, never read.
    #[allow(dead_code)]
    dir: Option<Arc<StorageDir>>,
}

impl Drop for StoreFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn next_file_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The authoritative in-memory adjacency a quarantined segment is rebuilt
/// from: the graph version this store generation serves (itself recovered
/// from snapshot + WAL replay on a durable server), plus which direction of
/// it this store encodes.
#[derive(Clone)]
struct RecoverySource {
    graph: Arc<crate::Graph>,
    outgoing: bool,
}

impl std::fmt::Debug for RecoverySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoverySource")
            .field("outgoing", &self.outgoing)
            .field("num_vertices", &self.graph.num_vertices())
            .finish()
    }
}

/// Per-store fault-handling state: the (optional) shared injector, the retry
/// policy, the recovery source for quarantine rebuilds, and the quarantine
/// directory overrides. Everything `Arc`-shared here survives `clone()` so a
/// view pinned on an old generation keeps its fault machinery.
#[derive(Debug, Clone, Default)]
struct FaultState {
    injector: Option<Arc<FaultInjector>>,
    retry: RetryPolicy,
    recovery: Option<RecoverySource>,
    /// Directory index → replacement entry for segments whose original bytes
    /// became unreadable and were rebuilt at a fresh file offset. Folded into
    /// the directory proper on the next `patched()`/`compacted()` generation.
    quarantined: Arc<Mutex<HashMap<usize, SegmentMeta>>>,
    /// Relaxed fast-path guard so fetches skip the quarantine lock until the
    /// first quarantine actually happens.
    has_quarantined: Arc<AtomicBool>,
    /// Set when a segment could be neither read nor rebuilt and a placeholder
    /// was served: the current traversal's result is garbage and must be
    /// discarded by the caller (see `GraphStorage::take_poisoned`).
    poisoned: Arc<AtomicBool>,
    /// Human-readable cause of the poisoning, for health reporting.
    poison_note: Arc<Mutex<Option<String>>>,
}

impl FaultState {
    /// The state a fresh store generation (patch or compaction) starts from:
    /// same injector/retry/poison channel, but an empty quarantine map — the
    /// new generation's directory already points at live replacement bytes.
    fn fresh_generation(&self) -> Self {
        Self {
            injector: self.injector.clone(),
            retry: self.retry,
            recovery: self.recovery.clone(),
            quarantined: Arc::new(Mutex::new(HashMap::new())),
            has_quarantined: Arc::new(AtomicBool::new(false)),
            poisoned: Arc::clone(&self.poisoned),
            poison_note: Arc::clone(&self.poison_note),
        }
    }
}

/// One adjacency direction stored on disk in self-contained segments.
#[derive(Debug, Clone)]
pub struct SegmentedStore {
    file: Arc<StoreFile>,
    pool: Arc<BufferPool>,
    /// Sorted, contiguous directory covering `0..num_vertices`.
    segments: Vec<SegmentMeta>,
    num_vertices: usize,
    num_edges: usize,
    faults: FaultState,
}

impl SegmentedStore {
    /// Write `adj` to `path` in segments of roughly `segment_bytes` bytes each
    /// and return a store reading them back through `pool`.
    pub fn build(
        adj: &Adjacency,
        path: &Path,
        segment_bytes: usize,
        pool: Arc<BufferPool>,
    ) -> io::Result<Self> {
        Self::build_in(adj, path, segment_bytes, pool, None, FaultState::default())
    }

    fn build_in(
        adj: &Adjacency,
        path: &Path,
        segment_bytes: usize,
        pool: Arc<BufferPool>,
        dir: Option<Arc<StorageDir>>,
        faults: FaultState,
    ) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut store = Self {
            file: Arc::new(StoreFile {
                file,
                path: path.to_path_buf(),
                id: next_file_id(),
                append_cursor: AtomicU64::new(0),
                dir,
            }),
            pool,
            segments: Vec::new(),
            num_vertices: adj.num_vertices(),
            num_edges: adj.num_edges(),
            faults,
        };
        let metas = store.append_range(adj, 0, adj.num_vertices() as VertexId, segment_bytes)?;
        store.segments = metas;
        Ok(store)
    }

    /// Cut vertices `lo..hi` of `adj` into segments of ~`segment_bytes` and
    /// append their encodings to the file, returning their directory entries.
    fn append_range(
        &mut self,
        adj: &Adjacency,
        lo: VertexId,
        hi: VertexId,
        segment_bytes: usize,
    ) -> io::Result<Vec<SegmentMeta>> {
        let mut metas = Vec::new();
        let mut v = lo;
        while v < hi {
            let seg_start = v;
            let mut offsets: Vec<u32> = vec![0];
            let mut targets: Vec<VertexId> = Vec::new();
            let mut weights: Vec<EdgeWeight> = Vec::new();
            let mut bytes = 4usize; // the leading offset entry
            while v < hi {
                let (ns, ws) = (adj.neighbors(v), adj.weights(v));
                targets.extend_from_slice(ns);
                weights.extend_from_slice(ws);
                offsets.push(targets.len() as u32);
                bytes += 4 + ns.len() * 8;
                v += 1;
                if bytes >= segment_bytes {
                    break;
                }
            }
            let data = SegmentData {
                v_start: seg_start,
                offsets,
                targets,
                weights,
            };
            metas.push(self.append_segment(&data)?);
        }
        Ok(metas)
    }

    /// Append one encoded segment, reserving its byte range on the shared
    /// file. The offset is reserved once and the write retried in place on
    /// transient failure (partial bytes from a failed attempt are simply
    /// overwritten), so retries never leak file space.
    fn append_segment(&mut self, data: &SegmentData) -> io::Result<SegmentMeta> {
        Self::append_segment_to(&self.file, data, &self.faults)
    }

    fn append_segment_to(
        store_file: &StoreFile,
        data: &SegmentData,
        faults: &FaultState,
    ) -> io::Result<SegmentMeta> {
        let encoded = data.encode();
        let offset = store_file
            .append_cursor
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        crate::faults::with_retries(&faults.retry, faults.injector.as_deref(), || {
            if let Some(inj) = &faults.injector {
                match inj.on_io(FaultSite::SegmentWrite) {
                    Some(FaultAction::Error(e)) => return Err(e),
                    Some(FaultAction::ShortIo) => {
                        // Land half the bytes, then report the short write;
                        // the retry rewrites the full range at the same
                        // offset.
                        write_exact_at(&store_file.file, &encoded[..encoded.len() / 2], offset)?;
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "injected short segment write",
                        ));
                    }
                    None => {}
                }
            }
            write_exact_at(&store_file.file, &encoded, offset)
        })?;
        Ok(SegmentMeta {
            v_start: data.v_start,
            num_vertices: data.num_vertices() as u32,
            num_edges: data.targets.len() as u64,
            file_offset: offset,
            bytes: encoded.len() as u64,
        })
    }

    /// Index of the segment containing `v`.
    fn segment_of(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.num_vertices);
        self.segments.partition_point(|m| m.v_end() <= v)
    }

    /// The live directory entry for `idx`: the quarantine replacement when
    /// the original bytes went bad, the directory entry otherwise.
    fn live_meta(&self, idx: usize) -> SegmentMeta {
        if self.faults.has_quarantined.load(Ordering::Acquire) {
            if let Some(meta) = self
                .faults
                .quarantined
                .lock()
                .expect("quarantine lock poisoned")
                .get(&idx)
            {
                return *meta;
            }
        }
        self.segments[idx]
    }

    /// Fault (or hit) segment `idx` through the pool.
    ///
    /// Never panics on I/O failure: transient errors are retried with bounded
    /// exponential backoff; a segment whose bytes stay unreadable is
    /// quarantined — rebuilt from the recovery source at a fresh file offset
    /// and served bit-identically. Only when that too is impossible does the
    /// store serve an empty placeholder and mark itself poisoned, telling the
    /// server to discard the run's result.
    fn fetch(&self, idx: usize) -> Arc<SegmentData> {
        let meta = self.live_meta(idx);
        let mut attempt = 0u32;
        let err = loop {
            match self.load_segment(&meta) {
                Ok(data) => {
                    if attempt > 0 {
                        if let Some(inj) = &self.faults.injector {
                            inj.note_retry_success();
                        }
                    }
                    return data;
                }
                Err(e) if attempt < self.faults.retry.max_retries && !is_disk_full(&e) => {
                    if let Some(inj) = &self.faults.injector {
                        inj.note_retry();
                    }
                    std::thread::sleep(self.faults.retry.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => break e,
            }
        };
        match self.quarantine_rebuild(idx, &meta) {
            Ok(data) => data,
            Err(rebuild_err) => {
                *self
                    .faults
                    .poison_note
                    .lock()
                    .expect("poison note lock poisoned") = Some(format!(
                    "segment {}..{} unreadable ({err}) and unrebuildable ({rebuild_err})",
                    meta.v_start,
                    meta.v_end()
                ));
                self.faults.poisoned.store(true, Ordering::Release);
                Arc::new(SegmentData::empty_for(&meta))
            }
        }
    }

    /// One pool-mediated load attempt for the segment described by `meta`.
    fn load_segment(&self, meta: &SegmentMeta) -> io::Result<Arc<SegmentData>> {
        // Only consulted on a miss; `telemetry_handle` is an atomic-bool
        // check when no hub is attached.
        let telemetry = self.pool.telemetry_handle();
        self.pool.get(
            (self.file.id, meta.file_offset),
            meta.decoded_bytes(),
            || {
                let mut short_read = false;
                if let Some(inj) = &self.faults.injector {
                    match inj.on_io(FaultSite::SegmentRead) {
                        Some(FaultAction::Error(e)) => return Err(e),
                        Some(FaultAction::ShortIo) => short_read = true,
                        None => {}
                    }
                }
                let mut bytes = vec![0u8; meta.bytes as usize];
                let read_began = telemetry.as_ref().map(|t| t.begin());
                read_exact_at(&self.file.file, &mut bytes, meta.file_offset)?;
                if short_read {
                    // Deliver a truncated buffer: the validation below must
                    // catch it exactly as it would a real torn read.
                    bytes.truncate(bytes.len() / 2);
                }
                if let (Some(t), Some(h)) = (&telemetry, read_began) {
                    t.end(h, "disk_read", "storage", Telemetry::lane());
                }
                let decode_began = telemetry.as_ref().map(|t| t.begin());
                let data = SegmentData::decode(meta, &bytes).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "segment failed length/CRC validation (short read or corruption)",
                    )
                })?;
                if let (Some(t), Some(h)) = (&telemetry, decode_began) {
                    t.end(h, "decode", "storage", Telemetry::lane());
                }
                Ok((data, meta.bytes))
            },
        )
    }

    /// Rebuild an unreadable segment's bytes from the recovery source (the
    /// in-memory graph this store generation serves), append the replacement
    /// at a fresh offset, and repoint the quarantine directory at it. The
    /// rebuilt lists are the same lists the lost bytes encoded, so traversal
    /// stays bit-identical.
    fn quarantine_rebuild(&self, idx: usize, failed: &SegmentMeta) -> io::Result<Arc<SegmentData>> {
        let src = self.faults.recovery.as_ref().ok_or_else(|| {
            io::Error::other("no recovery source attached (plain out-of-core store)")
        })?;
        let adj = if src.outgoing {
            src.graph.out_adjacency()
        } else {
            src.graph.in_adjacency()
        };
        if (failed.v_end() as usize) > adj.num_vertices() {
            return Err(io::Error::other(
                "recovery source covers an older graph version",
            ));
        }
        let mut offsets: Vec<u32> = vec![0];
        let mut targets: Vec<VertexId> = Vec::new();
        let mut weights: Vec<EdgeWeight> = Vec::new();
        for v in failed.v_start..failed.v_end() {
            targets.extend_from_slice(adj.neighbors(v));
            weights.extend_from_slice(adj.weights(v));
            offsets.push(targets.len() as u32);
        }
        let data = SegmentData {
            v_start: failed.v_start,
            offsets,
            targets,
            weights,
        };
        let meta = Self::append_segment_to(&self.file, &data, &self.faults)?;
        debug_assert_eq!(meta.num_edges, failed.num_edges, "recovery list mismatch");
        self.faults
            .quarantined
            .lock()
            .expect("quarantine lock poisoned")
            .insert(idx, meta);
        self.faults.has_quarantined.store(true, Ordering::Release);
        if let Some(inj) = &self.faults.injector {
            inj.note_quarantine();
        }
        let data = Arc::new(data);
        self.pool
            .insert((self.file.id, meta.file_offset), Arc::clone(&data));
        Ok(data)
    }

    /// Number of segments in the directory.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total on-disk bytes of the *live* segments (superseded generations of
    /// patched segments still occupy file space but are not counted).
    pub fn footprint_bytes(&self) -> u64 {
        self.segments.iter().map(|m| m.bytes).sum()
    }

    /// Total bytes ever appended to the backing file — live segments plus
    /// every superseded segment version left behind by patches.
    pub fn file_bytes(&self) -> u64 {
        self.file.append_cursor.load(Ordering::Relaxed)
    }

    /// Bytes of superseded segment versions still occupying the backing file.
    /// Only compaction ([`GraphStorage::compacted`]) reclaims them.
    pub fn dead_bytes(&self) -> u64 {
        self.file_bytes().saturating_sub(self.footprint_bytes())
    }

    /// Stored edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Re-derive this store against `new_adj` after an edge-update batch:
    /// segments covering a vertex in `dirty` are re-encoded from `new_adj`
    /// and appended to the file (their directory entries repointed, their
    /// superseded cache frames dropped); grown vertices get fresh segments.
    /// Clean segments keep their bytes and any warm cache frames. Returns the
    /// patched store and the number of segments rewritten (appended ones
    /// included).
    ///
    /// The caller guarantees `dirty` covers every vertex whose list in this
    /// direction changed, and that the id space only grew.
    pub fn patched(
        &self,
        new_adj: &Adjacency,
        dirty: &[VertexId],
        segment_bytes: usize,
    ) -> io::Result<(Self, u64)> {
        assert!(
            new_adj.num_vertices() >= self.num_vertices,
            "the id space only grows"
        );
        let mut out = self.clone();
        out.num_vertices = new_adj.num_vertices();
        out.num_edges = new_adj.num_edges();
        let mut rewrite: Vec<usize> = dirty
            .iter()
            .filter(|&&v| (v as usize) < self.num_vertices)
            .map(|&v| self.segment_of(v))
            .collect();
        rewrite.sort_unstable();
        rewrite.dedup();
        // Re-encode each dirty vertex range through the same byte-budget
        // splitter the build uses, so a range whose lists grew past the
        // segment budget splits instead of ballooning — an oversized segment
        // would eventually exceed the whole pool budget and break the
        // residency invariant. One dirty segment may therefore become
        // several; the directory is re-spliced below.
        let mut superseded = Vec::with_capacity(rewrite.len());
        let mut rewritten = 0u64;
        let mut segments = Vec::with_capacity(out.segments.len());
        let mut rewrite_cursor = 0usize;
        for (idx, old) in self.segments.iter().enumerate() {
            // Quarantine replacements are the live bytes: clean segments
            // carry them into the new generation's directory, dirty ones
            // supersede them like any other live version.
            let live = self.live_meta(idx);
            if rewrite.get(rewrite_cursor) == Some(&idx) {
                rewrite_cursor += 1;
                superseded.push((self.file.id, live.file_offset));
                let fresh = out.append_range(new_adj, old.v_start, old.v_end(), segment_bytes)?;
                rewritten += fresh.len() as u64;
                segments.extend(fresh);
            } else {
                segments.push(live);
            }
        }
        if new_adj.num_vertices() > self.num_vertices {
            let appended = out.append_range(
                new_adj,
                self.num_vertices as VertexId,
                new_adj.num_vertices() as VertexId,
                segment_bytes,
            )?;
            rewritten += appended.len() as u64;
            segments.extend(appended);
        }
        out.segments = segments;
        // The new generation starts with an empty quarantine map (its
        // directory already points at live bytes) but keeps the recovery
        // source of *this* generation until the caller re-attaches the new
        // graph version via `GraphStorage::set_recovery`.
        out.faults = self.faults.fresh_generation();
        self.pool.invalidate(superseded);
        Ok((out, rewritten))
    }
}

/// Positioned read safe under the concurrent segment loads
/// [`BufferPool::get`] performs outside its lock: unix `pread` and Windows
/// `seek_read` never touch the shared cursor; any other platform serializes
/// its seek+read pairs on a process-wide lock so two faulting workers cannot
/// interleave and decode each other's bytes.
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(windows)]
    {
        use std::os::windows::fs::FileExt;
        let mut done = 0usize;
        while done < buf.len() {
            let n = file.seek_read(&mut buf[done..], offset + done as u64)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "segment truncated",
                ));
            }
            done += n;
        }
        Ok(())
    }
    #[cfg(not(any(unix, windows)))]
    {
        use std::io::{Read, Seek, SeekFrom};
        static SEEK_LOCK: Mutex<()> = Mutex::new(());
        let _guard = SEEK_LOCK.lock().unwrap();
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

/// Positioned write with the same cursor-safety contract as
/// [`read_exact_at`]: appends and quarantine rebuilds write at reserved
/// offsets without disturbing concurrent positioned reads.
fn write_exact_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, offset)
    }
    #[cfg(windows)]
    {
        use std::os::windows::fs::FileExt;
        let mut done = 0usize;
        while done < buf.len() {
            let n = file.seek_write(&buf[done..], offset + done as u64)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "segment write stalled",
                ));
            }
            done += n;
        }
        Ok(())
    }
    #[cfg(not(any(unix, windows)))]
    {
        use std::io::{Seek, SeekFrom, Write};
        static SEEK_LOCK: Mutex<()> = Mutex::new(());
        let _guard = SEEK_LOCK.lock().unwrap();
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)
    }
}

/// A pinned run of segments serving a contiguous vertex range. Lookups keep a
/// cursor hint because the engine walks vertices in ascending order.
pub struct SegmentRangeView<'a> {
    store: &'a SegmentedStore,
    /// Index of the first pinned segment in the store's directory.
    first: usize,
    pinned: Vec<Arc<SegmentData>>,
    hint: std::cell::Cell<usize>,
}

impl AdjacencyView for SegmentRangeView<'_> {
    #[inline]
    fn list(&self, v: VertexId) -> (&[VertexId], &[EdgeWeight]) {
        let mut i = self.hint.get().min(self.pinned.len() - 1);
        // The hint is almost always right (ascending traversal); otherwise
        // walk, falling back to the directory only on a wild jump.
        loop {
            let meta = &self.store.segments[self.first + i];
            if v < meta.v_start {
                i -= 1;
            } else if v >= meta.v_end() {
                i += 1;
            } else {
                self.hint.set(i);
                return self.pinned[i].list(v);
            }
        }
    }
}

impl AdjacencyStore for SegmentedStore {
    type View<'a> = SegmentRangeView<'a>;

    fn view(&self, lo: VertexId, hi: VertexId) -> SegmentRangeView<'_> {
        debug_assert!(lo < hi, "empty view range");
        let first = self.segment_of(lo);
        let last = self.segment_of(hi - 1);
        let pinned = (first..=last).map(|i| self.fetch(i)).collect();
        SegmentRangeView {
            store: self,
            first,
            pinned,
            hint: std::cell::Cell::new(0),
        }
    }

    fn view_span(&self, v: VertexId) -> (VertexId, VertexId) {
        let meta = &self.segments[self.segment_of(v)];
        (meta.v_start, meta.v_end())
    }

    fn store_num_vertices(&self) -> usize {
        self.num_vertices
    }
}

/// Configuration of an out-of-core graph store.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageConfig {
    /// Byte budget of the shared buffer pool (both directions count against
    /// it). Must comfortably exceed `workers × segment_bytes` — each worker's
    /// cursor pins one segment — or faulted segments cannot be cached.
    pub budget_bytes: u64,
    /// Target on-disk bytes per segment.
    pub segment_bytes: usize,
    /// Directory for the backing files; a process-unique directory under
    /// [`std::env::temp_dir`] when `None`. Files are deleted when the last
    /// store generation drops.
    pub dir: Option<PathBuf>,
    /// Bounded exponential-backoff policy for transient segment read/write
    /// failures.
    pub retry: RetryPolicy,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self {
            budget_bytes: 64 << 20,
            segment_bytes: 64 << 10,
            dir: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Both adjacency directions of one graph version on disk, sharing one
/// buffer pool — the out-of-core counterpart of [`crate::Graph`]'s CSR+CSC
/// pair.
#[derive(Debug)]
pub struct GraphStorage {
    out: SegmentedStore,
    incoming: SegmentedStore,
    pool: Arc<BufferPool>,
    segment_bytes: usize,
}

impl GraphStorage {
    /// Write both directions of `graph` to disk under `config`.
    pub fn build(graph: &crate::Graph, config: &StorageConfig) -> io::Result<Self> {
        Self::build_with_faults(graph, config, None)
    }

    /// [`GraphStorage::build`] with a shared fault injector attached to both
    /// directions' disk touchpoints. Servers always attach one (disarmed by
    /// default) so retries/quarantines are counted; plain stores pass `None`.
    pub fn build_with_faults(
        graph: &crate::Graph,
        config: &StorageConfig,
        injector: Option<Arc<FaultInjector>>,
    ) -> io::Result<Self> {
        // An auto-created directory is removed when the last generation's
        // files drop; a user-supplied one is left alone.
        let (dir, dir_guard) = match &config.dir {
            Some(d) => (d.clone(), None),
            None => {
                let d = std::env::temp_dir().join(format!(
                    "slfe-oocore-{}-{}",
                    std::process::id(),
                    next_file_id()
                ));
                (d.clone(), Some(Arc::new(StorageDir { path: d })))
            }
        };
        std::fs::create_dir_all(&dir)?;
        let pool = Arc::new(BufferPool::new(config.budget_bytes));
        let faults = FaultState {
            injector,
            retry: config.retry,
            ..FaultState::default()
        };
        // Each direction gets its *own* quarantine map (directory indices are
        // per-store) but shares the injector and the poisoned channel.
        let out = SegmentedStore::build_in(
            graph.out_adjacency(),
            &dir.join(format!("csr-{}.seg", next_file_id())),
            config.segment_bytes,
            Arc::clone(&pool),
            dir_guard.clone(),
            faults.fresh_generation(),
        )?;
        let incoming = SegmentedStore::build_in(
            graph.in_adjacency(),
            &dir.join(format!("csc-{}.seg", next_file_id())),
            config.segment_bytes,
            Arc::clone(&pool),
            dir_guard,
            faults.fresh_generation(),
        )?;
        Ok(Self {
            out,
            incoming,
            pool,
            segment_bytes: config.segment_bytes,
        })
    }

    /// Attach the graph version this storage serves as the recovery source
    /// for quarantine rebuilds. Must be re-attached after every
    /// [`GraphStorage::patched`] (the new generation serves a new version);
    /// the previous generation keeps its own source and stays recoverable
    /// while pinned queries drain.
    pub fn set_recovery(&mut self, graph: &Arc<crate::Graph>) {
        self.out.faults.recovery = Some(RecoverySource {
            graph: Arc::clone(graph),
            outgoing: true,
        });
        self.incoming.faults.recovery = Some(RecoverySource {
            graph: Arc::clone(graph),
            outgoing: false,
        });
    }

    /// Take-and-clear the poisoned flag: true when some traversal since the
    /// last call was served a placeholder for an unrecoverable segment, so
    /// its result is garbage and must be discarded.
    pub fn take_poisoned(&self) -> bool {
        // `|` not `||`: both flags must be consumed.
        self.out.faults.poisoned.swap(false, Ordering::AcqRel)
            | self.incoming.faults.poisoned.swap(false, Ordering::AcqRel)
    }

    /// Human-readable cause of the most recent poisoning, if any.
    pub fn poison_note(&self) -> Option<String> {
        for store in [&self.out, &self.incoming] {
            if let Some(note) = store
                .faults
                .poison_note
                .lock()
                .expect("poison note lock poisoned")
                .clone()
            {
                return Some(note);
            }
        }
        None
    }

    /// Segments currently served from quarantine replacements (folded back
    /// into the directory by the next patch/compaction generation).
    pub fn quarantined_segments(&self) -> usize {
        let count = |s: &SegmentedStore| {
            if s.faults.has_quarantined.load(Ordering::Acquire) {
                s.faults
                    .quarantined
                    .lock()
                    .expect("quarantine lock poisoned")
                    .len()
            } else {
                0
            }
        };
        count(&self.out) + count(&self.incoming)
    }

    /// The CSR (outgoing) direction.
    pub fn out_store(&self) -> &SegmentedStore {
        &self.out
    }

    /// The CSC (incoming) direction.
    pub fn in_store(&self) -> &SegmentedStore {
        &self.incoming
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Total live on-disk bytes across both directions.
    pub fn footprint_bytes(&self) -> u64 {
        self.out.footprint_bytes() + self.incoming.footprint_bytes()
    }

    /// Total backing-file bytes across both directions, dead bytes included.
    pub fn file_bytes(&self) -> u64 {
        self.out.file_bytes() + self.incoming.file_bytes()
    }

    /// Bytes of superseded segment versions across both directions.
    pub fn dead_bytes(&self) -> u64 {
        self.out.dead_bytes() + self.incoming.dead_bytes()
    }

    /// Fraction of the backing files occupied by superseded segment versions
    /// (0.0 for empty files). The compaction trigger compares this against
    /// its configured threshold.
    pub fn dead_fraction(&self) -> f64 {
        let file = self.file_bytes();
        if file == 0 {
            0.0
        } else {
            self.dead_bytes() as f64 / file as f64
        }
    }

    /// Rewrite both directions into fresh backing files containing only live
    /// data, retiring the current generation's files: their unpinned buffer
    /// -pool frames are dropped immediately, and the files themselves are
    /// deleted once the last pre-compaction generation drops
    /// ([`StoreFile`]'s `Drop`). The new storage lives in the same directory
    /// and shares the same pool; `graph` must be the graph version this
    /// storage currently serves.
    pub fn compacted(&self, graph: &crate::Graph) -> io::Result<Self> {
        assert_eq!(
            graph.num_vertices(),
            self.out.num_vertices,
            "compaction requires the graph version this storage serves"
        );
        assert_eq!(graph.num_edges(), self.out.num_edges);
        let dir = self
            .out
            .file
            .path
            .parent()
            .expect("store file has a parent directory")
            .to_path_buf();
        let dir_guard = self.out.file.dir.clone();
        let out = SegmentedStore::build_in(
            graph.out_adjacency(),
            &dir.join(format!("csr-{}.seg", next_file_id())),
            self.segment_bytes,
            Arc::clone(&self.pool),
            dir_guard.clone(),
            self.out.faults.fresh_generation(),
        )?;
        let incoming = SegmentedStore::build_in(
            graph.in_adjacency(),
            &dir.join(format!("csc-{}.seg", next_file_id())),
            self.segment_bytes,
            Arc::clone(&self.pool),
            dir_guard,
            self.incoming.faults.fresh_generation(),
        )?;
        self.pool.invalidate_file(self.out.file.id);
        self.pool.invalidate_file(self.incoming.file.id);
        Ok(Self {
            out,
            incoming,
            pool: Arc::clone(&self.pool),
            segment_bytes: self.segment_bytes,
        })
    }

    /// Patch both directions against the post-batch `graph`: only segments
    /// covering a vertex in `dirty` (the batch's dirty endpoints) are
    /// rewritten, plus fresh segments for appended vertices. Returns the new
    /// storage generation — sharing this one's files and pool — and the
    /// total segments rewritten.
    pub fn patched(&self, graph: &crate::Graph, dirty: &[VertexId]) -> io::Result<(Self, u64)> {
        let (out, a) = self
            .out
            .patched(graph.out_adjacency(), dirty, self.segment_bytes)?;
        let (incoming, b) =
            self.incoming
                .patched(graph.in_adjacency(), dirty, self.segment_bytes)?;
        Ok((
            Self {
                out,
                incoming,
                pool: Arc::clone(&self.pool),
                segment_bytes: self.segment_bytes,
            },
            a + b,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::UpdateBatch;
    use crate::generators;

    fn tmp_config(budget: u64, segment: usize) -> StorageConfig {
        StorageConfig {
            budget_bytes: budget,
            segment_bytes: segment,
            ..StorageConfig::default()
        }
    }

    fn assert_lists_match(graph: &crate::Graph, storage: &GraphStorage) {
        let mut out_cursor = StreamCursor::new(storage.out_store());
        let mut in_cursor = StreamCursor::new(storage.in_store());
        for v in graph.vertices() {
            let (ts, ws) = out_cursor.list(v);
            assert_eq!(ts, graph.out_neighbors(v), "CSR list of {v}");
            assert_eq!(ws, graph.out_weights(v), "CSR weights of {v}");
            let (ts, ws) = in_cursor.list(v);
            assert_eq!(ts, graph.in_neighbors(v), "CSC list of {v}");
            assert_eq!(ws, graph.in_weights(v), "CSC weights of {v}");
        }
    }

    #[test]
    fn segmented_store_round_trips_every_list() {
        let g = generators::rmat(500, 4000, 0.57, 0.19, 0.19, 3);
        let storage = GraphStorage::build(&g, &tmp_config(1 << 20, 1 << 10)).unwrap();
        assert!(storage.out_store().num_segments() > 1);
        assert_eq!(storage.out_store().num_edges(), g.num_edges());
        assert_lists_match(&g, &storage);
    }

    #[test]
    fn in_memory_adjacency_implements_the_store_trait() {
        let g = generators::rmat(100, 700, 0.57, 0.19, 0.19, 5);
        let adj = g.in_adjacency();
        assert_eq!(adj.store_num_vertices(), g.num_vertices());
        let mut cursor = StreamCursor::new(adj);
        for v in g.vertices() {
            assert_eq!(cursor.list(v).0, g.in_neighbors(v));
        }
    }

    #[test]
    fn pool_stays_within_budget_and_counts_refaults() {
        let g = generators::rmat(2000, 16000, 0.57, 0.19, 0.19, 7);
        let budget = 16 << 10; // far below the footprint
        let storage = GraphStorage::build(&g, &tmp_config(budget, 2 << 10)).unwrap();
        assert!(storage.footprint_bytes() > budget);
        // Two full passes: the second must refault what the first evicted.
        for _ in 0..2 {
            let mut cursor = StreamCursor::new(storage.out_store());
            for v in g.vertices() {
                let _ = cursor.list(v);
            }
        }
        let c = storage.pool().counters();
        assert!(
            c.segments_faulted > storage.out_store().num_segments() as u64,
            "second pass must refault ({} faults, {} segments)",
            c.segments_faulted,
            storage.out_store().num_segments()
        );
        assert!(c.segment_bytes_read > budget);
        assert!(
            storage.pool().peak_resident_bytes() <= budget,
            "peak resident {} exceeds budget {budget}",
            storage.pool().peak_resident_bytes()
        );
    }

    #[test]
    fn generous_budget_faults_each_segment_once() {
        let g = generators::rmat(800, 6400, 0.57, 0.19, 0.19, 11);
        let storage = GraphStorage::build(&g, &tmp_config(64 << 20, 2 << 10)).unwrap();
        for _ in 0..3 {
            let mut cursor = StreamCursor::new(storage.in_store());
            for v in g.vertices() {
                let _ = cursor.list(v);
            }
        }
        let c = storage.pool().counters();
        assert_eq!(
            c.segments_faulted,
            storage.in_store().num_segments() as u64,
            "warm passes must not refault"
        );
    }

    #[test]
    fn patched_store_serves_the_mutated_graph() {
        for seed in 0..4u64 {
            let g = generators::rmat(600, 4200, 0.57, 0.19, 0.19, seed + 40);
            let storage = GraphStorage::build(&g, &tmp_config(1 << 20, 1 << 10)).unwrap();
            let mut rng = crate::rng::SplitMix64::seed_from_u64(seed);
            let n = g.num_vertices() as u32;
            let mut batch = UpdateBatch::new();
            for _ in 0..25 {
                let src = rng.range_u32(0, n);
                if rng.next_f64() < 0.6 {
                    let hi = if rng.next_f64() < 0.3 { n + 6 } else { n };
                    batch.insert(src, rng.range_u32(0, hi), rng.range_f32(1.0, 9.0));
                } else if let Some(&dst) = g.out_neighbors(src).first() {
                    batch.delete(src, dst);
                }
            }
            let (mutated, effect) = g.apply_batch(&batch);
            let (patched, rewritten) = storage.patched(&mutated, &effect.dirty).unwrap();
            assert!(rewritten > 0);
            let total_segments =
                patched.out_store().num_segments() + patched.in_store().num_segments();
            assert!(
                (rewritten as usize) < total_segments,
                "a small batch must not rewrite every segment ({rewritten} of {total_segments})"
            );
            assert_lists_match(&mutated, &patched);
            // The pre-patch generation still serves the old graph.
            assert_lists_match(&g, &storage);
        }
    }

    /// Sustained growth concentrated in one vertex range must re-split the
    /// dirty segment on patch, not balloon it: an ever-growing segment would
    /// eventually exceed the whole pool budget and break the residency
    /// invariant.
    #[test]
    fn patching_resplits_segments_that_outgrow_the_byte_budget() {
        let segment_bytes = 1 << 10;
        let mut graph = generators::path(400);
        let mut storage =
            GraphStorage::build(&graph, &tmp_config(64 << 10, segment_bytes)).unwrap();
        // 12 batches of 40 edges all out of vertex 3: its segment's range
        // accumulates ~480 edges (~4 KiB), several times the segment budget.
        for round in 0..12u32 {
            let mut batch = UpdateBatch::new();
            for k in 0..40u32 {
                batch.insert(3, 4 + ((round * 40 + k) * 7) % 390, 1.0 + round as f32);
            }
            let (mutated, effect) = graph.apply_batch(&batch);
            let (patched, _) = storage.patched(&mutated, &effect.dirty).unwrap();
            graph = mutated;
            storage = patched;
        }
        assert!(graph.out_degree(3) > 300);
        assert_lists_match(&graph, &storage);
        // No segment may grow past the budget by more than one vertex's
        // list (the splitter closes a segment only after the vertex that
        // crossed the line) plus the trailing CRC word.
        let hub_list_bytes = (graph.out_degree(3) * 8) as u64;
        for store in [storage.out_store(), storage.in_store()] {
            for meta in &store.segments {
                assert!(
                    meta.bytes <= segment_bytes as u64 + hub_list_bytes + 12,
                    "segment covering {}..{} ballooned to {} B",
                    meta.v_start,
                    meta.v_end(),
                    meta.bytes
                );
            }
        }
    }

    #[test]
    fn view_pins_segments_against_eviction() {
        let g = generators::rmat(1500, 12000, 0.57, 0.19, 0.19, 13);
        let budget = 8 << 10;
        let storage = GraphStorage::build(&g, &tmp_config(budget, 2 << 10)).unwrap();
        // Pin the first segment, then sweep the whole store to force eviction
        // pressure; the pinned data must stay valid (and identical) throughout.
        let store = storage.out_store();
        let view = store.view(0, 1);
        let before: Vec<VertexId> = view.list(0).0.to_vec();
        let mut cursor = StreamCursor::new(store);
        for v in g.vertices() {
            let _ = cursor.list(v);
        }
        assert_eq!(view.list(0).0, before.as_slice());
    }

    #[test]
    fn dead_bytes_track_superseded_segment_versions() {
        let g = generators::rmat(400, 2800, 0.57, 0.19, 0.19, 21);
        let storage = GraphStorage::build(&g, &tmp_config(1 << 20, 1 << 10)).unwrap();
        assert_eq!(storage.dead_bytes(), 0, "a fresh build has no dead bytes");
        assert_eq!(storage.file_bytes(), storage.footprint_bytes());
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 5.0).insert(7, 3, 2.0);
        let (mutated, effect) = g.apply_batch(&batch);
        let (patched, _) = storage.patched(&mutated, &effect.dirty).unwrap();
        assert!(patched.dead_bytes() > 0, "patching strands old versions");
        assert_eq!(
            patched.file_bytes(),
            patched.footprint_bytes() + patched.dead_bytes()
        );
        assert!(patched.dead_fraction() > 0.0 && patched.dead_fraction() < 1.0);
    }

    #[test]
    fn compaction_reclaims_dead_bytes_and_serves_identical_lists() {
        let mut graph = generators::rmat(500, 3500, 0.57, 0.19, 0.19, 23);
        let mut storage = GraphStorage::build(&graph, &tmp_config(1 << 20, 1 << 10)).unwrap();
        let mut rng = crate::rng::SplitMix64::seed_from_u64(99);
        for _ in 0..10 {
            let n = graph.num_vertices() as u32;
            let mut batch = UpdateBatch::new();
            for _ in 0..20 {
                batch.insert(
                    rng.range_u32(0, n),
                    rng.range_u32(0, n),
                    rng.range_f32(1.0, 9.0),
                );
            }
            let (mutated, effect) = graph.apply_batch(&batch);
            let (patched, _) = storage.patched(&mutated, &effect.dirty).unwrap();
            graph = mutated;
            storage = patched;
        }
        assert!(storage.dead_fraction() > 0.2, "batches strand dead bytes");
        let faulted_before = storage.pool().counters().segments_faulted;
        let compacted = storage.compacted(&graph).unwrap();
        assert_eq!(
            compacted.dead_bytes(),
            0,
            "compaction removes every dead byte"
        );
        assert_eq!(compacted.file_bytes(), compacted.footprint_bytes());
        assert_lists_match(&graph, &compacted);
        // The retired generation keeps serving until dropped.
        assert_lists_match(&graph, &storage);
        // The retired files' frames were invalidated: fresh traversal faults.
        assert!(compacted.pool().counters().segments_faulted > faulted_before);
    }

    #[test]
    fn compaction_retires_old_backing_files_on_drop() {
        let dir = std::env::temp_dir().join(format!("slfe-oocore-compact-{}", std::process::id()));
        let g = generators::path(64);
        let config = StorageConfig {
            dir: Some(dir.clone()),
            ..tmp_config(1 << 20, 1 << 10)
        };
        let storage = GraphStorage::build(&g, &config).unwrap();
        let count_files = || std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(count_files(), 2);
        let compacted = storage.compacted(&g).unwrap();
        assert_eq!(count_files(), 4, "old and new generations coexist");
        drop(storage);
        assert_eq!(
            count_files(),
            2,
            "retired files deleted with the old generation"
        );
        assert_lists_match(&g, &compacted);
        drop(compacted);
        assert_eq!(count_files(), 0);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn auto_created_directories_are_removed_with_the_last_generation() {
        let g = generators::path(32);
        let storage = GraphStorage::build(&g, &tmp_config(1 << 20, 1 << 10)).unwrap();
        let dir = storage.out.file.path.parent().unwrap().to_path_buf();
        assert!(dir.exists());
        drop(storage);
        assert!(!dir.exists(), "auto-created temp dir must not leak");
    }

    #[test]
    fn transient_read_faults_retry_to_bit_identical_lists() {
        use crate::faults::{FaultInjector, FaultKind, FaultPlan};
        let g = generators::rmat(300, 2100, 0.57, 0.19, 0.19, 31);
        let inj = FaultInjector::armed(FaultPlan::new().fail(
            FaultSite::SegmentRead,
            0,
            FaultKind::Transient { failures: 2 },
        ));
        let mut config = tmp_config(1 << 20, 1 << 10);
        config.retry = RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::none()
        };
        let storage = GraphStorage::build_with_faults(&g, &config, Some(Arc::clone(&inj))).unwrap();
        assert_lists_match(&g, &storage);
        let c = inj.counters();
        assert_eq!(c.injected_transient, 2);
        assert_eq!(c.io_retries, 2);
        assert_eq!(c.io_retry_successes, 1);
        assert_eq!(c.segments_quarantined, 0);
        assert!(!storage.take_poisoned());
    }

    /// Satellite regression: a segment read failing mid-fault must hand its
    /// reserved frame back, so `resident_bytes` never drifts above (or, with
    /// every load failing, off) its true value.
    #[test]
    fn failed_segment_reads_release_their_pool_reservation() {
        use crate::faults::{FaultInjector, FaultKind, FaultPlan};
        let g = generators::rmat(800, 6400, 0.57, 0.19, 0.19, 17);
        let budget = 16 << 10;
        let inj = FaultInjector::armed(FaultPlan::new().fail(
            FaultSite::SegmentRead,
            0,
            FaultKind::Permanent,
        ));
        let mut config = tmp_config(budget, 2 << 10);
        config.retry = RetryPolicy::none();
        let storage = GraphStorage::build_with_faults(&g, &config, Some(Arc::clone(&inj))).unwrap();
        // Every load fails (no retries, no recovery source): each reservation
        // must be handed back, so residency never drifts off zero.
        for _ in 0..2 {
            let mut cursor = StreamCursor::new(storage.out_store());
            for v in g.vertices() {
                let _ = cursor.list(v);
            }
            assert_eq!(storage.pool().resident_bytes(), 0, "reservation leaked");
        }
        assert!(storage.take_poisoned(), "placeholders must poison the run");
        assert!(storage.poison_note().is_some());
        assert!(inj.counters().injected_permanent > 0);
        // Healed store: traversal succeeds and stays within budget.
        inj.disarm();
        assert_lists_match(&g, &storage);
        assert!(storage.pool().resident_bytes() <= budget);
        assert!(storage.pool().peak_resident_bytes() <= budget);
        assert!(!storage.take_poisoned());
    }

    #[test]
    fn permanent_read_faults_quarantine_and_rebuild_bit_identical_segments() {
        use crate::faults::{FaultInjector, FaultKind, FaultPlan};
        let g = Arc::new(generators::rmat(400, 2800, 0.57, 0.19, 0.19, 19));
        let inj = FaultInjector::armed(FaultPlan::new().fail(
            FaultSite::SegmentRead,
            0,
            FaultKind::Permanent,
        ));
        let mut config = tmp_config(1 << 20, 1 << 10);
        config.retry = RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::none()
        };
        let mut storage =
            GraphStorage::build_with_faults(&g, &config, Some(Arc::clone(&inj))).unwrap();
        storage.set_recovery(&g);
        assert_lists_match(&g, &storage);
        let c = inj.counters();
        assert!(c.segments_quarantined > 0, "every faulted segment rebuilds");
        assert_eq!(
            storage.quarantined_segments() as u64,
            c.segments_quarantined
        );
        assert!(!storage.take_poisoned(), "quarantine is full recovery");

        // A patch folds the quarantine replacements into the new directory.
        inj.disarm();
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 5.0);
        let (mutated, effect) = g.apply_batch(&batch);
        let (mut patched, _) = storage.patched(&mutated, &effect.dirty).unwrap();
        let mutated = Arc::new(mutated);
        patched.set_recovery(&mutated);
        assert_eq!(patched.quarantined_segments(), 0);
        assert_lists_match(&mutated, &patched);
    }

    /// The per-segment CRC turns silent on-disk corruption into a fallible
    /// decode, which the quarantine path then heals from the recovery source.
    #[test]
    fn corrupt_segment_bytes_are_detected_and_rebuilt() {
        let g = Arc::new(generators::rmat(200, 1400, 0.57, 0.19, 0.19, 23));
        let mut config = tmp_config(1 << 20, 1 << 10);
        config.retry = RetryPolicy::none();
        let mut storage = GraphStorage::build(&g, &config).unwrap();
        storage.set_recovery(&g);
        // Flip bytes inside the first live segment on disk.
        let meta = storage.out.segments[0];
        write_exact_at(&storage.out.file.file, &[0xAB; 8], meta.file_offset).unwrap();
        assert_lists_match(&g, &storage);
        assert_eq!(storage.quarantined_segments(), 1);
        assert!(!storage.take_poisoned());
    }

    #[test]
    fn backing_files_are_deleted_when_the_last_generation_drops() {
        let dir = std::env::temp_dir().join(format!("slfe-oocore-droptest-{}", std::process::id()));
        let g = generators::path(64);
        let config = StorageConfig {
            dir: Some(dir.clone()),
            ..tmp_config(1 << 20, 1 << 10)
        };
        let storage = GraphStorage::build(&g, &config).unwrap();
        let count_files = || std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(count_files(), 2);
        let mut batch = UpdateBatch::new();
        batch.insert(0, 63, 2.0);
        let (mutated, effect) = g.apply_batch(&batch);
        let (patched, _) = storage.patched(&mutated, &effect.dirty).unwrap();
        drop(storage);
        assert_eq!(count_files(), 2, "shared files survive the old generation");
        drop(patched);
        assert_eq!(count_files(), 0, "files deleted with the last generation");
        let _ = std::fs::remove_dir(&dir);
    }
}
