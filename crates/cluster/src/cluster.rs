//! The [`Cluster`]: a partitioned view of a graph across simulated nodes.
//!
//! Engines (SLFE and the baselines) share this view: it answers "which node owns
//! vertex v", exposes each node's vertex list, tracks per-node work and inter-node
//! traffic, and provides the per-node chunk scheduler.

use crate::comm::{CommCostModel, CommStats, CommTracker};
use crate::config::ClusterConfig;
use crate::stealing::ChunkScheduler;
use slfe_graph::{Graph, VertexId};
use slfe_partition::{ChunkingPartitioner, Partitioner, Partitioning};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A graph partitioned across the simulated cluster's nodes.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    /// Shared, not owned: a serving loop keeps one partitioning stable across
    /// graph versions and hands the same `Arc` to every version's cluster,
    /// so building a cluster never copies the O(V) assignment.
    partitioning: Arc<Partitioning>,
    comm: CommTracker,
    per_node_work: Vec<AtomicU64>,
}

impl Cluster {
    /// Partition `graph` across `config.num_nodes` nodes with the default
    /// (Gemini-style chunking) partitioner, as the paper's preprocessing phase does.
    pub fn build(graph: &Graph, config: ClusterConfig) -> Self {
        let partitioning = ChunkingPartitioner::default().partition(graph, config.num_nodes);
        Self::with_partitioning(partitioning, config)
    }

    /// Build a cluster around an existing partitioning (e.g. from the hash
    /// partitioner used by the PowerGraph-style baselines).
    pub fn with_partitioning(partitioning: Partitioning, config: ClusterConfig) -> Self {
        Self::with_shared_partitioning(Arc::new(partitioning), config)
    }

    /// [`Cluster::with_partitioning`] without taking ownership: the serving
    /// path shares one stable partitioning across every graph version's
    /// cluster instead of cloning the O(V) owner array per applied batch.
    pub fn with_shared_partitioning(
        partitioning: Arc<Partitioning>,
        config: ClusterConfig,
    ) -> Self {
        assert_eq!(
            partitioning.num_parts(),
            config.num_nodes,
            "partition count must match the node count"
        );
        let num_nodes = config.num_nodes;
        Self {
            config,
            partitioning,
            comm: CommTracker::new(num_nodes),
            per_node_work: (0..num_nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of logical nodes.
    pub fn num_nodes(&self) -> usize {
        self.config.num_nodes
    }

    /// The vertex → node assignment.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Node that owns vertex `v`.
    pub fn owner_of(&self, v: VertexId) -> usize {
        self.partitioning.owner_of(v)
    }

    /// Vertices owned by `node`, ascending.
    pub fn vertices_of(&self, node: usize) -> &[VertexId] {
        self.partitioning.vertices_of(node)
    }

    /// Iterate node ids.
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        0..self.config.num_nodes
    }

    /// `true` if both endpoints live on the same node.
    pub fn is_local_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.owner_of(u) == self.owner_of(v)
    }

    /// A chunk scheduler sized for one node's worker pool.
    pub fn node_scheduler(&self) -> ChunkScheduler {
        ChunkScheduler::new(self.config.workers_per_node, self.config.chunk_size)
    }

    /// The degree-aware, cluster-wide chunk layout of `graph` under this
    /// partitioning: every node's owned vertices cut into mini-chunks (hub
    /// chunks split), ordered descending by estimated work. The global
    /// executor claims these chunks across all nodes at once.
    pub fn build_layout(&self, graph: &Graph) -> crate::layout::GlobalChunkLayout {
        let owned: Vec<&[VertexId]> = self.nodes().map(|n| self.vertices_of(n)).collect();
        crate::layout::GlobalChunkLayout::build(graph, &owned, self.config.chunk_size)
    }

    /// Record a vertex update travelling from the owner of `src` to the owner of
    /// `dst`, carrying `bytes` bytes (typically 8: vertex id + value).
    pub fn record_update_message(&self, src: VertexId, dst: VertexId, bytes: u64) {
        self.comm
            .record(self.owner_of(src), self.owner_of(dst), bytes);
    }

    /// Flush `messages` pre-aggregated updates (carrying `bytes` bytes in total)
    /// from `src_node` to `dst_node` — the batched form of
    /// [`Cluster::record_update_message`] used by the parallel executor's
    /// per-worker communication scratch.
    pub fn record_node_messages(
        &self,
        src_node: usize,
        dst_node: usize,
        messages: u64,
        bytes: u64,
    ) {
        self.comm.record_many(src_node, dst_node, messages, bytes);
    }

    /// Charge the distribution of an edge-update batch across the cluster: each
    /// update enters at `ingest_node` (the node a client is connected to) and is
    /// forwarded to the owner of every dirty vertex it touches, one message of
    /// `bytes_per_update` bytes per remote dirty endpoint. Local endpoints cost
    /// nothing. Returns the number of messages charged.
    ///
    /// This is the serving-path counterpart of the per-iteration update traffic:
    /// it prices *getting the mutation to its partitions* before any
    /// recomputation starts, so incremental-vs-full comparisons cannot quietly
    /// ignore ingest cost.
    pub fn record_batch_distribution(
        &self,
        ingest_node: usize,
        dirty: impl IntoIterator<Item = VertexId>,
        bytes_per_update: u64,
    ) -> u64 {
        assert!(ingest_node < self.num_nodes(), "ingest node out of range");
        let mut messages = 0u64;
        for v in dirty {
            let owner = self.owner_of(v);
            if owner != ingest_node {
                self.comm.record(ingest_node, owner, bytes_per_update);
                messages += 1;
            }
        }
        messages
    }

    /// Record `work` counted units performed by `node`.
    pub fn record_node_work(&self, node: usize, work: u64) {
        self.per_node_work[node].fetch_add(work, Ordering::Relaxed);
    }

    /// Per-node accumulated work (counted units).
    pub fn per_node_work(&self) -> Vec<u64> {
        self.per_node_work
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Aggregate communication statistics.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }

    /// The raw communication tracker (for per-pair queries).
    pub fn comm_tracker(&self) -> &CommTracker {
        &self.comm
    }

    /// Simulated seconds spent on the network so far, under the configured model.
    pub fn simulated_comm_seconds(&self) -> f64 {
        self.comm.simulated_seconds(&self.config.comm_cost)
    }

    /// Simulated seconds under an explicit model (ablations).
    pub fn simulated_comm_seconds_with(&self, model: &CommCostModel) -> f64 {
        self.comm.simulated_seconds(model)
    }

    /// Reset per-run mutable state (communication and work counters) so the same
    /// partitioned cluster can host several application runs, mirroring the paper's
    /// observation that preprocessing artifacts are reused across jobs.
    pub fn reset_run_state(&self) {
        self.comm.reset();
        for w in &self.per_node_work {
            w.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::generators;
    use slfe_partition::HashPartitioner;

    fn small_cluster() -> (Graph, Cluster) {
        let g = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 9);
        let c = Cluster::build(&g, ClusterConfig::new(4, 2));
        (g, c)
    }

    #[test]
    fn build_partitions_every_vertex() {
        let (g, c) = small_cluster();
        assert_eq!(c.num_nodes(), 4);
        c.partitioning().validate(&g).unwrap();
        let total: usize = c.nodes().map(|n| c.vertices_of(n).len()).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn ownership_is_consistent_with_vertex_lists() {
        let (_, c) = small_cluster();
        for node in c.nodes() {
            for &v in c.vertices_of(node) {
                assert_eq!(c.owner_of(v), node);
            }
        }
    }

    #[test]
    fn local_edge_test_matches_owners() {
        let (g, c) = small_cluster();
        for v in g.vertices().take(50) {
            for &u in g.out_neighbors(v) {
                assert_eq!(c.is_local_edge(v, u), c.owner_of(v) == c.owner_of(u));
            }
        }
    }

    #[test]
    fn update_messages_are_charged_only_across_nodes() {
        let (g, c) = small_cluster();
        let mut expected_remote = 0u64;
        for v in g.vertices() {
            for &u in g.out_neighbors(v) {
                c.record_update_message(v, u, 8);
                if !c.is_local_edge(v, u) {
                    expected_remote += 1;
                }
            }
        }
        let stats = c.comm_stats();
        assert_eq!(stats.messages, expected_remote);
        assert_eq!(stats.messages + stats.local_updates, g.num_edges() as u64);
        assert!(c.simulated_comm_seconds() > 0.0);
        assert_eq!(c.simulated_comm_seconds_with(&CommCostModel::free()), 0.0);
    }

    #[test]
    fn node_work_accumulates_and_resets() {
        let (_, c) = small_cluster();
        c.record_node_work(0, 10);
        c.record_node_work(0, 5);
        c.record_node_work(3, 7);
        assert_eq!(c.per_node_work(), vec![15, 0, 0, 7]);
        c.reset_run_state();
        assert_eq!(c.per_node_work(), vec![0, 0, 0, 0]);
        assert_eq!(c.comm_stats().messages, 0);
    }

    #[test]
    fn batch_distribution_charges_only_remote_owners() {
        let (_, c) = small_cluster();
        c.reset_run_state();
        // One vertex per node: three remote, one local to the ingest node.
        let picks: Vec<u32> = (0..4).map(|node| c.vertices_of(node)[0]).collect();
        let charged = c.record_batch_distribution(0, picks.iter().copied(), 12);
        assert_eq!(charged, 3);
        let stats = c.comm_stats();
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.bytes, 36);
        // An empty dirty set charges nothing.
        assert_eq!(c.record_batch_distribution(0, std::iter::empty(), 12), 0);
    }

    #[test]
    #[should_panic(expected = "ingest node out of range")]
    fn batch_distribution_rejects_bad_ingest_node() {
        let (_, c) = small_cluster();
        c.record_batch_distribution(9, std::iter::empty(), 8);
    }

    #[test]
    fn custom_partitioning_is_respected() {
        let g = generators::path(16);
        let p = HashPartitioner::modulo().partition(&g, 2);
        let c = Cluster::with_partitioning(p, ClusterConfig::new(2, 1));
        assert_eq!(c.owner_of(0), 0);
        assert_eq!(c.owner_of(1), 1);
    }

    #[test]
    #[should_panic(expected = "must match the node count")]
    fn mismatched_partition_count_panics() {
        let g = generators::path(8);
        let p = HashPartitioner::modulo().partition(&g, 2);
        Cluster::with_partitioning(p, ClusterConfig::new(4, 1));
    }

    #[test]
    fn scheduler_uses_configured_workers_and_chunk_size() {
        let g = generators::path(10);
        let c = Cluster::build(&g, ClusterConfig::new(1, 3).with_chunk_size(4));
        let s = c.node_scheduler();
        assert_eq!(s.num_chunks(10), 3);
    }
}
