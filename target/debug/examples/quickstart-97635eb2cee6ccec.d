/root/repo/target/debug/examples/quickstart-97635eb2cee6ccec.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-97635eb2cee6ccec.rmeta: examples/quickstart.rs

examples/quickstart.rs:
