//! The RR-aware parallel execution engine (paper Algorithms 2–4 and §3.3–3.6).
//!
//! The engine owns a partitioned view of the graph (the simulated cluster), the
//! redundancy-reduction guidance produced at build time, and the configuration. A
//! [`crate::GraphProgram`] is executed iteratively:
//!
//! * **Mode selection.** Min/max programs switch between *push* (scatter along the
//!   outgoing edges of active vertices) and *pull* (gather along the incoming edges
//!   of every scheduled vertex) using Gemini's active-edge-fraction heuristic.
//!   Arithmetic programs always pull (§3.3, footnote 2). The active frontier is a
//!   dense [`Bitset`] (one bit per vertex, popcount-based counting), reused across
//!   iterations.
//! * **Start late.** With redundancy reduction enabled, a min/max destination vertex
//!   is only pulled once the iteration number (the *single ruler*) has reached its
//!   `last_iter` from the guidance.
//! * **Finish early.** An arithmetic vertex whose value has been stable for
//!   `last_iter` consecutive iterations (the *multi ruler*) is early-converged and
//!   skipped for the rest of the run.
//! * **Correctness.** On every pull→push transition all vertices are re-activated so
//!   updates made by since-deactivated vertices still reach their successors
//!   (Algorithm 3, lines 2–4). A redundancy-reduced min/max run additionally never
//!   terminates straight out of pull mode: if the active set empties while the last
//!   iteration was a pull, one "flush" push with full reactivation runs first, so
//!   every vertex that "started late" still receives the updates it skipped.
//!
//! # Real parallelism vs. simulation
//!
//! Execution runs on a **persistent, machine-spanning worker pool**
//! ([`slfe_cluster::WorkerPool`], `total_workers = nodes × workers_per_node`
//! threads, spawned once at engine build and parked between phases). One
//! iteration is **one global phase**: every node's owned-vertex chunks — cut by
//! the degree-aware [`slfe_cluster::GlobalChunkLayout`] (hub chunks split,
//! claim order descending by estimated work) — are claimed by all pool workers
//! at once, so logical nodes execute *concurrently*, not one after another.
//! Wall-clock time therefore scales with `total_workers` on real hardware.
//!
//! What remains *simulated* is the cluster's cost model: inter-node messages
//! are counted (never sent over a network) and priced at the iteration
//! barrier, and the per-iteration "simulated seconds" are derived by
//! deterministically re-assigning the measured per-chunk costs to each node's
//! `workers_per_node` simulated workers (greedy least-loaded over the layout
//! order — what chunk-grained stealing converges to) and taking the slowest
//! node's busiest worker. In short: parallel execution is measured machine-wide,
//! the distribution (node-local worker counts, network pricing) is modelled —
//! and, new in PR 3, the simulated schedule itself is deterministic at every
//! worker count, because it no longer depends on which physical thread happened
//! to steal which chunk.
//!
//! # Parallel execution and determinism
//!
//! Workers never share mutable state during a phase. Each worker owns a scratch
//! ([`Counters`], a next-frontier [`Bitset`], a per-node-pair message tally, and —
//! for push mode — a local gather buffer plus a contributing-sender-node mask);
//! scratches are merged at the phase barrier. The guarantees, per aggregation
//! kind:
//!
//! * **Pull mode** (both kinds): every destination vertex is written by exactly one
//!   worker, and its gather folds the incoming edges in the fixed CSC order. Values
//!   — including arithmetic (floating-point) sums — are **bit-for-bit identical**
//!   for every worker count, as are all counters and message tallies.
//! * **Push mode** (min/max only — arithmetic programs never push): workers fold
//!   contributions into worker-local buffers which are combined once per
//!   destination at the barrier. Because a min/max `combine` is idempotent,
//!   commutative and associative, the merged values are **bit-for-bit identical**
//!   to the sequential result for every worker count. Work/update counters in
//!   parallel push are counted per merged destination (not per improving edge), so
//!   with more than one worker per node they can differ slightly from the
//!   single-worker tally; messages are charged once per changed remote
//!   destination per *contributing sender node* (sender-side aggregation — the
//!   sender set is tracked exactly through the per-worker node masks).
//! * **`workers_per_node: 1`** keeps the historical sequential push path (nodes
//!   in ascending order, per-edge counting) and a single simulated worker per
//!   node — it reproduces the pre-parallelism sequential engine bit-for-bit,
//!   counters and simulated seconds included, and serves as the deterministic
//!   oracle for the parallel paths. (Pull phases still *execute* on the global
//!   pool even then; their per-destination accounting makes that invisible.)
//!
//! Which physical worker processes which chunk remains nondeterministic under
//! stealing; every result, counter total, message tally and — since the
//! schedule is now simulated from deterministic per-chunk costs — every
//! per-worker load and simulated-seconds figure above is not.
//!
//! # Activity-proportional execution (PR 4)
//!
//! The redundancy rulers make *counted work* proportional to what still needs
//! computing; the two mechanisms below make the executor's *per-iteration
//! overhead* and *memory footprint* follow suit, without changing a single
//! result bit:
//!
//! * **Chunk-level activity summaries.** Before each phase the engine decides,
//!   from barrier-merged state only (so the decision is identical at every
//!   worker count), which whole chunks cannot produce any effect and skips
//!   them without touching their vertices: a push skips chunks with no active
//!   source (word-range popcount of the frontier over the chunk's own-vertex
//!   span); a min/max pull skips chunks that are entirely rr-gated
//!   (`iter < min last_iter` over the chunk), chunks with no in-edges, and
//!   *caught-up* chunks none of whose in-neighbors changed last iteration
//!   (frontier probe over the chunk's in-neighbor span) — a chunk is caught up
//!   once a pull past its `max last_iter` (or a fully-reactivated push at such
//!   an iteration) has delivered every in-edge at least once, after which the
//!   standard incremental invariant applies; an arithmetic pull skips chunks
//!   whose every vertex has early-converged (per-chunk converged counts
//!   maintained at the barrier). No skip rule can change a value, a frontier
//!   bit, a vertex-update count or the run's trajectory; the rr-gate,
//!   no-in-edge, early-converged and push rules are additionally exact on
//!   every counter (the per-vertex paths would have recorded nothing), while
//!   the caught-up rule deliberately *drops* redundant gather work — its
//!   `edge_computations` and pull-mode mirror messages — which is precisely
//!   the saving being measured. Skipped chunks cost 0 in the simulated
//!   per-node schedule and are tallied in [`Counters::chunks_skipped`].
//! * **Sparse push scratch.** Below
//!   [`crate::EngineConfig::sparse_push_density`] (active-vertex fraction),
//!   push workers fold contributions into compact open-addressed maps
//!   (destination → value + contributing-node mask) instead of dense O(n)
//!   buffers, and the barrier merge walks only live entries (applied in
//!   ascending destination order). Because a min/max `combine` is idempotent,
//!   commutative and associative, and the per-sender-node masks are preserved
//!   exactly, the merged values, counters and message tallies are bit-for-bit
//!   identical to the dense representation. Dense scratch (including the
//!   shared merge buffers) is allocated lazily on the first *dense* push
//!   phase, so warm `push_only` restarts and arithmetic (pull-only) runs never
//!   pay the `total_workers × O(n)` footprint; the live footprint is reported
//!   in [`Counters::scratch_bytes_peak`].
//!
//! **Memory trade-off:** dense scratch is per *pool* worker, so a dense push
//! phase allocates `total_workers` (not `workers_per_node`) O(n) buffers — for
//! min/max programs one gather buffer, an n-bit touched set and an n-bit
//! frontier per worker (≈ `total_workers × 9n` bytes at one `f32` per vertex,
//! e.g. ~2.9 GB for 10M vertices on the 8×4 default). That is the price of
//! cross-node push parallelism with contention-free sender-local folding on
//! *dense* frontiers; sparse phases and pull-only programs stay at
//! O(touched destinations) per worker.

use crate::config::{EngineConfig, RedundancyMode};
use crate::program::{AggregationKind, GraphProgram};
use crate::result::ProgramResult;
use crate::rrg::RrGuidance;
use slfe_cluster::{ChunkScheduler, Cluster, ClusterConfig, GlobalChunkLayout, WorkerPool};
use slfe_graph::storage::{AdjacencyStore, StreamCursor};
use slfe_graph::{Bitset, Degrees, Graph, GraphStorage, VertexId};
use slfe_metrics::telemetry::{RunRecorder, SpanWindow, Telemetry};
use slfe_metrics::{Counters, ExecutionStats, Mode, PhaseBreakdown};
use std::sync::Arc;
use std::time::Instant;

/// Size in bytes of one vertex update message: a 4-byte vertex id + 4-byte value.
const UPDATE_MESSAGE_BYTES: u64 = 8;

/// A raw-pointer view of a slice that worker threads write through.
///
/// Safety contract: callers must guarantee that no index is accessed by more than
/// one worker during a phase. The engine upholds this by construction — in pull
/// mode every index written is a destination vertex, and each destination belongs
/// to exactly one mini-chunk, which is processed by exactly one worker.
struct SharedSlice<T> {
    ptr: *mut T,
    #[cfg(debug_assertions)]
    len: usize,
}

unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    fn new(slice: &mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            #[cfg(debug_assertions)]
            len: slice.len(),
        }
    }

    /// # Safety
    /// `i` must be in bounds and not concurrently written by another worker.
    #[inline]
    unsafe fn get(&self, i: usize) -> T {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// # Safety
    /// `i` must be in bounds and not concurrently accessed by another worker.
    #[inline]
    unsafe fn set(&self, i: usize, value: T) {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }
}

/// Slot key marking a free entry of [`SparsePushMap`]. `u32::MAX` can never be
/// a real destination: a graph with `u32::MAX` vertices does not fit the id
/// space ([`slfe_graph::INVALID_VERTEX`] reserves the same value).
const EMPTY_KEY: u32 = u32::MAX;

/// Open-addressed (linear-probe, power-of-two capacity) map from destination
/// vertex to a folded push contribution plus its contributing-sender-node
/// mask: the sparse counterpart of the dense `local_values`/`touched`/
/// `contrib_nodes` trio. Used by push phases whose frontier density is below
/// [`crate::EngineConfig::sparse_push_density`], so memory and merge time are
/// proportional to the destinations actually touched, not to |V|.
///
/// Hash/probe order never reaches the results: contributions fold per
/// destination with the program's idempotent-commutative-associative min/max
/// `combine`, masks fold with bitwise OR, and the barrier applies destinations
/// in ascending id order — so values, counters and message tallies are
/// bit-identical to the dense representation.
struct SparsePushMap<V> {
    /// Destination keys, `EMPTY_KEY` = free. Length is 0 or a power of two.
    keys: Vec<u32>,
    /// Folded contribution per slot.
    values: Vec<V>,
    /// `mask_words` contributing-node words per slot (empty on single-node
    /// clusters, where no messages need attribution).
    masks: Vec<u64>,
    mask_words: usize,
    /// Live entries.
    len: usize,
}

impl<V: Copy> SparsePushMap<V> {
    fn new(mask_words: usize) -> Self {
        Self {
            keys: Vec::new(),
            values: Vec::new(),
            masks: Vec::new(),
            mask_words,
            len: 0,
        }
    }

    /// Fibonacci multiplicative hash into a power-of-two table.
    #[inline]
    fn bucket(dst: u32, capacity: usize) -> usize {
        ((dst as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (capacity - 1)
    }

    /// The slot holding `dst`, inserting a fresh `identity`-valued entry if
    /// absent; the bool reports whether the entry is fresh. Grows (rehashes)
    /// at 7/8 load so linear probing stays short.
    #[inline]
    fn slot_for(&mut self, dst: u32, identity: V) -> (usize, bool) {
        debug_assert_ne!(dst, EMPTY_KEY);
        if self.keys.is_empty() || (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow(identity);
        }
        let capacity = self.keys.len();
        let mut i = Self::bucket(dst, capacity);
        loop {
            let k = self.keys[i];
            if k == dst {
                return (i, false);
            }
            if k == EMPTY_KEY {
                self.keys[i] = dst;
                self.len += 1;
                return (i, true);
            }
            i = (i + 1) & (capacity - 1);
        }
    }

    /// Double the capacity (min 64 slots) and rehash every live entry.
    fn grow(&mut self, identity: V) {
        let new_capacity = (self.keys.len() * 2).max(64);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_capacity]);
        let old_values = std::mem::replace(&mut self.values, vec![identity; new_capacity]);
        let old_masks =
            std::mem::replace(&mut self.masks, vec![0u64; new_capacity * self.mask_words]);
        for (slot, &key) in old_keys.iter().enumerate() {
            if key == EMPTY_KEY {
                continue;
            }
            let mut i = Self::bucket(key, new_capacity);
            while self.keys[i] != EMPTY_KEY {
                i = (i + 1) & (new_capacity - 1);
            }
            self.keys[i] = key;
            self.values[i] = old_values[slot];
            self.masks[i * self.mask_words..(i + 1) * self.mask_words]
                .copy_from_slice(&old_masks[slot * self.mask_words..(slot + 1) * self.mask_words]);
        }
    }

    /// Visit every live entry as `(destination, value, mask words)`.
    fn for_each(&self, mut f: impl FnMut(u32, V, &[u64])) {
        for (slot, &key) in self.keys.iter().enumerate() {
            if key != EMPTY_KEY {
                f(
                    key,
                    self.values[slot],
                    &self.masks[slot * self.mask_words..(slot + 1) * self.mask_words],
                );
            }
        }
    }

    /// Drop every entry, keeping the capacity for the next phase.
    fn clear(&mut self) {
        if self.len > 0 {
            self.keys.fill(EMPTY_KEY);
            self.masks.fill(0);
            self.len = 0;
        }
    }

    /// Drop the entries *and* the capacity (a dense phase took over).
    fn release(&mut self) {
        self.keys = Vec::new();
        self.values = Vec::new();
        self.masks = Vec::new();
        self.len = 0;
    }

    /// Current footprint in bytes (keys + values + masks).
    fn bytes(&self) -> u64 {
        (self.keys.len() * (4 + std::mem::size_of::<V>()) + self.masks.len() * 8) as u64
    }
}

/// Per-worker scratch, allocated once per run and reused every iteration.
struct WorkerScratch<V> {
    /// Vertices this worker activated during the current phase.
    next_frontier: Bitset,
    /// Work counters accumulated during the current phase.
    counters: Counters,
    /// Number of vertex-value changes this worker observed (pull mode).
    changed: usize,
    /// Message tally per `(src_node, dst_node)` pair, flushed at the barrier.
    messages: Vec<u64>,
    /// Byte tally parallel to `messages`.
    bytes: Vec<u64>,
    /// Dense push scratch: worker-local gather buffer, first-write guarded by
    /// `touched`. **Lazily allocated** by the first dense push phase
    /// ([`WorkerScratch::ensure_dense`]) — sparse-only runs (warm `push_only`
    /// restarts, tiny frontiers) and pull-only programs never pay the O(n).
    local_values: Vec<V>,
    /// Dense push scratch: which entries of `local_values` hold contributions.
    touched: Bitset,
    /// Dense push scratch, multi-node clusters: per-destination bitmask of the
    /// nodes whose sources contributed to `local_values[d]` — `mask_words`
    /// words per destination. Merged at the barrier to charge one message per
    /// changed remote destination per contributing sender node. Entries are
    /// zeroed lazily alongside `touched`.
    contrib_nodes: Vec<u64>,
    /// Sparse push scratch: the compact map used below the density threshold.
    sparse: SparsePushMap<V>,
    /// Telemetry: the worker's execute window for the current phase, covered
    /// lock-free inside the phase closure and drained by the coordinator
    /// after the pool barrier. Never read when telemetry is off.
    window: SpanWindow,
}

impl<V: Copy> WorkerScratch<V> {
    /// `mask_words` is 0 on single-node clusters (no messages to attribute).
    /// No push scratch is allocated here — dense buffers appear on the first
    /// dense push phase, the sparse map grows with its first contributions.
    fn new(n: usize, num_nodes: usize, mask_words: usize) -> Self {
        Self {
            next_frontier: Bitset::new(n),
            counters: Counters::zero(),
            changed: 0,
            messages: vec![0u64; num_nodes * num_nodes],
            bytes: vec![0u64; num_nodes * num_nodes],
            local_values: Vec::new(),
            touched: Bitset::new(0),
            contrib_nodes: Vec::new(),
            sparse: SparsePushMap::new(mask_words),
            window: SpanWindow::default(),
        }
    }

    /// Allocate the dense push trio if this worker does not have it yet.
    fn ensure_dense(&mut self, n: usize, mask_words: usize, identity: V) {
        if self.touched.len() != n {
            self.local_values = vec![identity; n];
            self.touched = Bitset::new(n);
            self.contrib_nodes = vec![0u64; n * mask_words];
        }
    }

    /// Live push-scratch footprint (dense trio if allocated, plus the map).
    fn scratch_bytes(&self) -> u64 {
        (self.local_values.len() * std::mem::size_of::<V>()
            + self.touched.words().len() * 8
            + self.contrib_nodes.len() * 8) as u64
            + self.sparse.bytes()
    }

    #[inline]
    fn record_message(&mut self, num_nodes: usize, src_node: usize, dst_node: usize, bytes: u64) {
        let idx = src_node * num_nodes + dst_node;
        self.messages[idx] += 1;
        self.bytes[idx] += bytes;
    }
}

/// Seed state of one engine run: where the values and the frontier start, and
/// whether the redundancy-reduction rulers apply. [`SlfeEngine::run`] seeds from
/// the program's initial state; [`SlfeEngine::run_from`] seeds from a previous
/// fixpoint plus the dirty set of an edge-update batch.
struct RunSeed<V> {
    values: Vec<V>,
    active: Bitset,
    /// Whether the RR rulers gate this run. Warm min/max restarts disable them:
    /// "start late" levels are indexed by iteration number from a cold start and
    /// are meaningless relative to a warm frontier.
    use_rr: bool,
    /// Min/max only: never switch to pull mode. A warm restart's frontier can
    /// exceed the Gemini density threshold while almost every vertex is already
    /// at its fixpoint — a pull would then recompute the whole graph, exactly
    /// the redundancy a warm start exists to avoid. Push's counted work stays
    /// proportional to the disturbed region. (Pull's edge advantage is memory
    /// locality, i.e. wall clock on dense frontiers, not counted work.)
    push_only: bool,
    /// Work performed before the iteration loop (the warm-start invalidation
    /// pass), folded into the run's totals so counted work stays honest.
    preset: Counters,
}

/// The SLFE engine bound to one graph and one simulated cluster.
#[derive(Debug)]
pub struct SlfeEngine<'g> {
    graph: &'g Graph,
    cluster: Cluster,
    config: EngineConfig,
    rrg: RrGuidance,
    /// The persistent worker pool: `total_workers` threads spawned once here
    /// (or inherited via [`SlfeEngine::with_cluster_guidance_and_pool`]) and
    /// reused by every phase of every run, including RRG preprocessing.
    pool: Arc<WorkerPool>,
    /// Degree-aware, cluster-wide chunk layout (built once per graph version,
    /// or patched from the previous version's layout by the serving path).
    layout: GlobalChunkLayout,
    /// Per chunk of `layout`: `(min, max)` of the guidance's `last_iter` over
    /// the chunk's vertices. A min/max pull at `iter < min` would gate every
    /// vertex individually, so the whole chunk is skipped; a pull (or full
    /// reactivation push) at `iter >= max` gates nobody, which is what lets
    /// the chunk graduate to frontier-based skipping (`caught_up`).
    ///
    /// Computed lazily on the first ruler-gated run: warm restarts run with
    /// the rulers off and never read it, so the serving path's per-batch
    /// engine construction stays free of this O(V) scan (only a cold run or
    /// the server's dirty-fraction fallback pays it, once per engine).
    chunk_rr: std::sync::OnceLock<Vec<(u32, u32)>>,
    /// Out-of-core mode ([`EngineConfig::storage_budget_bytes`]): the graph's
    /// CSR/CSC on disk in segments, traversed through a byte-budgeted buffer
    /// pool instead of the in-memory adjacency. `None` keeps the historical
    /// all-in-RAM execution. Values are bit-identical either way; the
    /// difference is which bytes are resident (and the
    /// `segments_faulted`/`segment_bytes_read` counters).
    storage: Option<Arc<GraphStorage>>,
    /// Per-vertex degree arrays handed to program callbacks in place of the
    /// in-RAM graph ([`crate::GraphProgram`] hooks take `&Degrees`): two `u32`
    /// per vertex, indexed by physical id. Built once per engine.
    degrees: Degrees,
    /// Telemetry hub (span tracing + latency histograms), built from
    /// `config.telemetry` and attached to the storage buffer pool when one is
    /// present. Disabled by default; the disabled hub's begin/end are no-ops
    /// and the engine's hot paths read zero clocks through it.
    telemetry: Arc<Telemetry>,
    preprocessing_seconds: f64,
    preprocessing_wall_seconds: f64,
}

impl<'g> SlfeEngine<'g> {
    /// Partition `graph` across a fresh cluster and generate the RR guidance.
    pub fn build(graph: &'g Graph, cluster_config: ClusterConfig, config: EngineConfig) -> Self {
        let cluster = Cluster::build(graph, cluster_config);
        Self::with_cluster(graph, cluster, config)
    }

    /// Build the engine around an existing cluster (custom partitioning).
    pub fn with_cluster(graph: &'g Graph, cluster: Cluster, config: EngineConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(cluster.config().total_workers()));
        let wall_start = Instant::now();
        let rrg = RrGuidance::generate_parallel_on(graph, &pool);
        let preprocessing_wall_seconds = wall_start.elapsed().as_secs_f64();
        let mut engine = Self::with_cluster_guidance_and_pool(graph, cluster, config, rrg, pool);
        engine.preprocessing_wall_seconds = preprocessing_wall_seconds;
        engine
    }

    /// Build the engine around an existing cluster **and** an existing guidance —
    /// the incremental-serving path, where the guidance was repaired from the
    /// previous graph version ([`RrGuidance::repair`]) instead of regenerated.
    ///
    /// The simulated preprocessing charge uses the guidance's recorded generation
    /// work, which for a repaired guidance is the (much smaller) repair cost.
    pub fn with_cluster_and_guidance(
        graph: &'g Graph,
        cluster: Cluster,
        config: EngineConfig,
        rrg: RrGuidance,
    ) -> Self {
        let pool = Arc::new(WorkerPool::new(cluster.config().total_workers()));
        Self::with_cluster_guidance_and_pool(graph, cluster, config, rrg, pool)
    }

    /// [`SlfeEngine::with_cluster_and_guidance`] reusing an existing worker
    /// pool instead of spawning one — the warm-serving path:
    /// `slfe_delta::DeltaServer` builds one pool at startup and threads it
    /// through every graph version's engine, so applying a batch spawns zero
    /// threads. The pool must have at least `total_workers` threads.
    pub fn with_cluster_guidance_and_pool(
        graph: &'g Graph,
        cluster: Cluster,
        config: EngineConfig,
        rrg: RrGuidance,
        pool: Arc<WorkerPool>,
    ) -> Self {
        let layout = cluster.build_layout(graph);
        Self::with_prebuilt_layout(graph, cluster, config, rrg, pool, layout)
    }

    /// [`SlfeEngine::with_cluster_guidance_and_pool`] reusing a prebuilt chunk
    /// layout instead of deriving one — the serving path's final piece:
    /// `slfe_delta::DeltaServer` patches the previous graph version's layout
    /// at the batch's dirty endpoints ([`GlobalChunkLayout::patched`]) and
    /// hands it here, so applying a batch pays neither a thread spawn nor an
    /// O(V+E) layout scan+sort. The layout must span the cluster's nodes and
    /// cover each node's owned vertices exactly.
    pub fn with_prebuilt_layout(
        graph: &'g Graph,
        cluster: Cluster,
        config: EngineConfig,
        rrg: RrGuidance,
        pool: Arc<WorkerPool>,
        layout: GlobalChunkLayout,
    ) -> Self {
        let storage = config.storage_config().map(|sc| {
            Arc::new(
                GraphStorage::build(graph, &sc)
                    .expect("failed to write out-of-core graph segments"),
            )
        });
        Self::with_prebuilt_layout_and_storage(graph, cluster, config, rrg, pool, layout, storage)
    }

    /// [`SlfeEngine::with_prebuilt_layout`] reusing an existing out-of-core
    /// store instead of re-writing the segments — the serving path:
    /// `slfe_delta::DeltaServer` patches only the dirty segments of the
    /// previous graph version's store ([`GraphStorage::patched`]) and hands
    /// the patched generation here, so applying a batch re-encodes `O(dirty
    /// segments)` bytes rather than the whole graph. `storage`, when present,
    /// must cover the engine's graph; when `None` the engine runs in-memory
    /// regardless of what the configuration requests.
    pub fn with_prebuilt_layout_and_storage(
        graph: &'g Graph,
        cluster: Cluster,
        config: EngineConfig,
        rrg: RrGuidance,
        pool: Arc<WorkerPool>,
        layout: GlobalChunkLayout,
        storage: Option<Arc<GraphStorage>>,
    ) -> Self {
        if let Some(storage) = &storage {
            assert_eq!(
                storage.out_store().store_num_vertices(),
                graph.num_vertices(),
                "segmented store must cover the engine's graph"
            );
        }
        assert_eq!(
            rrg.num_vertices(),
            graph.num_vertices(),
            "guidance must cover the engine's graph"
        );
        assert!(
            pool.threads() >= cluster.config().total_workers(),
            "pool of {} threads cannot host {} cluster workers",
            pool.threads(),
            cluster.config().total_workers()
        );
        assert_eq!(
            layout.num_nodes(),
            cluster.num_nodes(),
            "layout must span the cluster's nodes"
        );
        for node in cluster.nodes() {
            let covered: usize = layout
                .node_chunks(node)
                .iter()
                .map(|&c| layout.chunks()[c].len())
                .sum();
            assert_eq!(
                covered,
                cluster.vertices_of(node).len(),
                "layout must cover node {node}'s owned vertices exactly"
            );
        }
        // Simulated preprocessing cost: the guidance pass is embarrassingly
        // parallel over the frontier, so its counted work — the generation work
        // for a fresh guidance, the (much smaller) repair work for a patched
        // one — is spread over every worker in the cluster, matching the
        // paper's claim that the overhead is negligible and amortised (§4.4).
        let workers = cluster.config().total_workers().max(1) as f64;
        let preprocessing_seconds = config.cost.seconds(rrg.generation_work()) / workers;
        let telemetry = Arc::new(Telemetry::new(config.telemetry));
        if let Some(storage) = &storage {
            storage.pool().set_telemetry(&telemetry);
        }
        Self {
            graph,
            cluster,
            config,
            rrg,
            pool,
            layout,
            chunk_rr: std::sync::OnceLock::new(),
            storage,
            degrees: Degrees::of(graph),
            telemetry,
            preprocessing_seconds,
            // No guidance BFS ran inside this constructor.
            preprocessing_wall_seconds: 0.0,
        }
    }

    /// The per-vertex degree view handed to program callbacks.
    pub fn degrees(&self) -> &Degrees {
        &self.degrees
    }

    /// Replace the telemetry hub — the serving path: `DeltaServer` keeps one
    /// hub across the fresh engine it builds per batch, so spans and
    /// histograms accumulate over the server's lifetime instead of resetting
    /// every batch. Re-attaches the hub to the storage buffer pool.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        if let Some(storage) = &self.storage {
            storage.pool().set_telemetry(&telemetry);
        }
        self.telemetry = telemetry;
    }

    /// The engine's telemetry hub.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Per-chunk `(min, max)` ruler bounds, computed on first ruler-gated use.
    fn chunk_rr_bounds(&self) -> &[(u32, u32)] {
        self.chunk_rr.get_or_init(|| {
            self.layout
                .chunks()
                .iter()
                .map(|chunk| {
                    let owned = self.cluster.vertices_of(chunk.node);
                    let mut bounds = (u32::MAX, 0u32);
                    for &v in &owned[chunk.start..chunk.end] {
                        let level = self.rrg.last_iter(v);
                        bounds.0 = bounds.0.min(level);
                        bounds.1 = bounds.1.max(level);
                    }
                    bounds
                })
                .collect()
        })
    }

    /// The processed graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The redundancy-reduction guidance generated at build time.
    pub fn guidance(&self) -> &RrGuidance {
        &self.rrg
    }

    /// The persistent worker pool driving every phase of this engine.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The degree-aware, cluster-wide chunk layout the executor claims from.
    pub fn layout(&self) -> &GlobalChunkLayout {
        &self.layout
    }

    /// The out-of-core segment store, when the engine runs in that mode.
    pub fn storage(&self) -> Option<&Arc<GraphStorage>> {
        self.storage.as_ref()
    }

    /// Simulated seconds spent generating the guidance (Figure 8 overhead).
    pub fn preprocessing_seconds(&self) -> f64 {
        self.preprocessing_seconds
    }

    /// Wall-clock seconds spent generating the guidance.
    pub fn preprocessing_wall_seconds(&self) -> f64 {
        self.preprocessing_wall_seconds
    }

    /// Execute `program` to convergence (or the configured iteration cap) and
    /// return its values plus full execution statistics.
    pub fn run<P: GraphProgram>(&self, program: &P) -> ProgramResult<P::Value> {
        let graph = self.graph;
        let n = graph.num_vertices();
        let values: Vec<P::Value> = graph
            .vertices()
            .map(|v| program.initial_value(v, &self.degrees))
            .collect();
        let active = Bitset::from_fn(n, |v| program.initial_active(v as VertexId, &self.degrees));
        self.run_seeded(
            program,
            RunSeed {
                values,
                active,
                use_rr: self.config.redundancy == RedundancyMode::Enabled,
                push_only: false,
                preset: Counters::zero(),
            },
        )
    }

    /// Warm-start `program` from a previous fixpoint after an edge-update batch,
    /// re-converging only what the batch disturbed.
    ///
    /// The engine must be built on the **mutated** graph. `previous` is the
    /// result of running the same program on the pre-batch graph (vertex ids are
    /// stable across [`slfe_graph::Graph::apply_batch`], so values line up
    /// index-for-index; appended vertices start from
    /// [`GraphProgram::warm_start_value`] with `None`). `dirty` flags the
    /// endpoints of every changed edge over the mutated vertex count
    /// ([`slfe_graph::BatchEffect::dirty_bitset`]).
    ///
    /// * **Monotone min/max programs** (SSSP, BFS, CC, WidestPath): a support
    ///   pass resets every vertex whose stored value may rely on a removed
    ///   edge, cascading along the old value-support edges — for
    ///   [`GraphProgram::strictly_monotonic`] programs it prunes at vertices
    ///   whose value is still derivable from surviving in-edges (cyclic
    ///   self-support is impossible there); for the rest (CC, WidestPath) it
    ///   conservatively resets the whole supported region, because two stale
    ///   vertices can circularly "derive" each other's dead values. The run
    ///   then re-converges from a frontier of the dirty endpoints, the
    ///   invalidated region and its in-boundary. Pure insertions need no
    ///   invalidation at all — they can only improve a monotone fixpoint, and
    ///   re-convergence lowers values from the active dirty endpoints (the
    ///   cascade itself trusts nothing but exact re-derivation, so a vertex
    ///   that merely *looks* improvable through a stale neighbor still
    ///   resets). The RR "start late" ruler is disabled
    ///   for the restart — its levels are indexed by iteration number from a
    ///   cold start — which does not affect values, only scheduling. (See
    ///   [`SlfeEngine::run_from_effect`] for the variant that skips
    ///   invalidation on insertion-only batches.)
    /// * **Arithmetic programs** (PageRank, TunkRank, SpMV, ...): delta-restart —
    ///   the previous fixpoint is the starting state on the mutated graph, and
    ///   the usual tolerance-based iteration re-converges it in a handful of
    ///   iterations. The multi ruler is disabled for the restart: warm values
    ///   are stable from iteration 1, so "finish early" would freeze vertices
    ///   before the batch's perturbation reaches them.
    ///
    /// The returned values equal a from-scratch [`SlfeEngine::run`] on the
    /// mutated graph: bit-for-bit for min/max programs, within convergence
    /// tolerance for arithmetic ones. The invalidation pass's counted work is
    /// folded into the result's totals.
    pub fn run_from<P: GraphProgram>(
        &self,
        program: &P,
        previous: &ProgramResult<P::Value>,
        dirty: &Bitset,
    ) -> ProgramResult<P::Value> {
        let seeds: Vec<VertexId> = dirty.iter_ones().map(|v| v as VertexId).collect();
        self.warm_restart(program, previous, dirty, &seeds)
    }

    /// [`SlfeEngine::run_from`] with the full precision of a
    /// [`slfe_graph::BatchEffect`]: the activation frontier still covers every
    /// dirty endpoint, but the invalidation pass seeds only from
    /// `worsened_dsts` — the destinations of deleted or reweighted edges, the
    /// only places a monotone fixpoint can get *worse*. For insertion-only
    /// batches this skips invalidation entirely, which matters most for
    /// programs without [`GraphProgram::strictly_monotonic`] contributions
    /// (CC, WidestPath), whose conservative cascade otherwise walks whole
    /// support regions.
    pub fn run_from_effect<P: GraphProgram>(
        &self,
        program: &P,
        previous: &ProgramResult<P::Value>,
        effect: &slfe_graph::BatchEffect,
    ) -> ProgramResult<P::Value> {
        let dirty = effect.dirty_bitset(self.graph.num_vertices());
        self.warm_restart(program, previous, &dirty, &effect.worsened_dsts)
    }

    /// Shared warm-restart implementation: `activate` seeds the re-convergence
    /// frontier, `invalidation_seeds` the support-loss pass.
    fn warm_restart<P: GraphProgram>(
        &self,
        program: &P,
        previous: &ProgramResult<P::Value>,
        activate: &Bitset,
        invalidation_seeds: &[VertexId],
    ) -> ProgramResult<P::Value> {
        let graph = self.graph;
        let n = graph.num_vertices();
        assert_eq!(
            activate.len(),
            n,
            "dirty bitset must cover the mutated graph"
        );
        let mut values: Vec<P::Value> = (0..n)
            .map(|v| {
                program.warm_start_value(
                    v as VertexId,
                    previous.values.get(v).copied(),
                    &self.degrees,
                )
            })
            .collect();

        if program.aggregation() == AggregationKind::Arithmetic {
            let mut active = Bitset::new(n);
            active.fill();
            // The multi ruler must stay off here: warm-started vertices are
            // stable from iteration 1, so "finish early" would freeze them
            // before the batch's perturbation propagates out to them. The
            // ruler's premise — k stable iterations means the inputs have
            // settled — only holds for cold-start dynamics.
            return self.run_seeded(
                program,
                RunSeed {
                    values,
                    active,
                    use_rr: false,
                    push_only: false,
                    preset: Counters::zero(),
                },
            );
        }

        // Min/max invalidation pass (sequential: the disturbed region is tiny
        // by design; past the fallback thresholds callers full-recompute
        // instead). A vertex still holding its initial value is intrinsically
        // supported. Beyond that, the rule depends on the program's
        // contribution structure:
        //
        // * strictly monotonic (SSSP, BFS): a stored value that can still be
        //   re-derived from surviving non-invalidated in-edges is genuinely
        //   supported — a support cycle would have to strictly improve around
        //   itself — so the cascade prunes there, and a candidate that *beats*
        //   the stored value (an inserted edge) needs no reset at all.
        // * otherwise (CC's label copy, WidestPath's capacity min): equal-value
        //   support can be circular — two stale vertices happily "derive" each
        //   other's dead values — so derivability proves nothing and every
        //   queued vertex is reset. The cascade then walks exactly the region
        //   the lost value could have kept alive.
        let strict = program.strictly_monotonic();
        let tolerance = self.config.tolerance;
        let mut preset = Counters::zero();
        let mut invalid = Bitset::new(n);
        let mut active = activate.clone();
        let mut queue: std::collections::VecDeque<VertexId> =
            invalidation_seeds.iter().copied().collect();
        while let Some(v) = queue.pop_front() {
            let vi = v as usize;
            if invalid.get(vi) {
                continue;
            }
            let initial = program.initial_value(v, &self.degrees);
            if !program.changed(values[vi], initial, tolerance) {
                // Still at its initial value: intrinsically supported.
                continue;
            }
            if strict {
                // Re-derive the vertex from scratch over its surviving in-edges.
                let mut gathered = program.identity();
                let mut has_contribution = false;
                for (u, w) in graph.in_edges(v) {
                    preset.edge_computations += 1;
                    if invalid.get(u as usize) {
                        continue;
                    }
                    if let Some(c) = program.edge_contribution(u, values[u as usize], w) {
                        gathered = program.combine(gathered, c);
                        has_contribution = true;
                    }
                }
                let candidate = if has_contribution {
                    program.apply(v, initial, gathered)
                } else {
                    initial
                };
                // Only *exact* re-derivation may prune the cascade. The prune
                // is safe against in-neighbors that get invalidated later in
                // the pass, because dying supporters re-queue exactly the
                // vertices whose value equals their old contribution — which is
                // precisely how this vertex passed. Any other relationship
                // (including a candidate that *beats* the stored value) must
                // reset: a beating candidate can be derived from a stale
                // neighbor whose own invalidation would never re-queue this
                // vertex, stranding a too-good value min-aggregation cannot
                // raise.
                if !program.changed(values[vi], candidate, tolerance) {
                    continue; // stored value still attainable: supported.
                }
            }
            // Support lost (or, without strict monotonicity, unprovable): reset
            // and cascade along the edges that used this value as support.
            let old = values[vi];
            invalid.set(vi);
            values[vi] = initial;
            active.set(vi);
            preset.vertex_updates += 1;
            for (y, w) in graph.out_edges(v) {
                preset.edge_computations += 1;
                if invalid.get(y as usize) {
                    continue;
                }
                if let Some(c) = program.edge_contribution(v, old, w) {
                    if !program.changed(values[y as usize], c, tolerance) {
                        queue.push_back(y);
                    }
                }
            }
        }
        // The invalidated region re-converges from its in-boundary: every intact
        // in-neighbor re-pushes its (valid) value into the hole.
        for v in invalid.iter_ones() {
            for &u in graph.in_neighbors(v as VertexId) {
                if !invalid.get(u as usize) {
                    active.set(u as usize);
                }
            }
        }

        self.run_seeded(
            program,
            RunSeed {
                values,
                active,
                use_rr: false,
                push_only: true,
                preset,
            },
        )
    }

    /// The shared iteration loop behind [`SlfeEngine::run`] and
    /// [`SlfeEngine::run_from`]: dispatch to the configured adjacency store —
    /// the in-memory CSR/CSC, or the disk-segment store behind the buffer
    /// pool. Both instantiations traverse identical `(neighbor, weight)`
    /// sequences, so results are bit-identical; only residency and the
    /// segment-fault counters differ.
    fn run_seeded<P: GraphProgram>(
        &self,
        program: &P,
        seed: RunSeed<P::Value>,
    ) -> ProgramResult<P::Value> {
        match &self.storage {
            Some(storage) => {
                self.run_seeded_on(program, seed, storage.out_store(), storage.in_store())
            }
            None => self.run_seeded_on(
                program,
                seed,
                self.graph.out_adjacency(),
                self.graph.in_adjacency(),
            ),
        }
    }

    /// The iteration loop proper, generic over the adjacency store each
    /// traversal phase streams from.
    fn run_seeded_on<P: GraphProgram, S: AdjacencyStore>(
        &self,
        program: &P,
        seed: RunSeed<P::Value>,
        out_store: &S,
        in_store: &S,
    ) -> ProgramResult<P::Value> {
        self.cluster.reset_run_state();
        let graph = self.graph;
        let n = graph.num_vertices();
        let arithmetic = program.aggregation() == AggregationKind::Arithmetic;
        let rr = seed.use_rr;
        let tolerance = self.config.tolerance;
        let max_level = self.rrg.max_level();
        // Highest guidance level whose vertices are guaranteed to have gathered from
        // all their in-neighbors at least once: a pull at iteration `i` covers every
        // vertex with `last_iter <= i`, and a push with full reactivation (the
        // Algorithm 3 transition) covers everything. A redundancy-reduced min/max
        // run may only terminate once every level is covered; otherwise a "late
        // starting" vertex could still be missing updates it skipped.
        let mut covered_level: u32 = if rr && !arithmetic { 0 } else { max_level };

        let mut values = seed.values;
        let mut active = seed.active;
        debug_assert_eq!(values.len(), n);
        debug_assert_eq!(active.len(), n);
        let mut active_count = active.count_ones();

        // Multi-ruler state ("finish early"): per-vertex stability counters.
        let mut stable_count = vec![0u32; n];
        let mut stable_value = values.clone();
        let mut last_changed_iter = vec![0u32; n];

        let num_nodes = self.cluster.num_nodes();
        let workers = self.cluster.config().workers_per_node;
        let total_workers = self.cluster.config().total_workers();
        // The persistent pool spawned all its threads at engine build; this
        // run's delta proves no phase re-spawned (see Counters::threads_spawned).
        let spawned_before = self.pool.threads_spawned();
        let mut per_node_worker_work: Vec<Vec<u64>> = vec![vec![0u64; workers]; num_nodes];

        // Buffers hoisted out of the iteration loop — zero per-iteration allocation.
        let mut prev_values: Vec<P::Value> = values.clone();
        let mut next_active = Bitset::new(n);
        let mask_words = if num_nodes > 1 {
            num_nodes.div_ceil(64)
        } else {
            0
        };
        let mut worker_states: Vec<WorkerScratch<P::Value>> = (0..total_workers)
            .map(|_| WorkerScratch::new(n, num_nodes, mask_words))
            .collect();
        // Dense push merge buffers: lazily allocated alongside the workers'
        // dense scratch by the first dense push phase. Sparse phases merge
        // through `merged_sparse` + `sparse_order` instead.
        let mut merged_values: Vec<P::Value> = Vec::new();
        let mut merged_touched = Bitset::new(0);
        let mut merged_nodes: Vec<u64> = Vec::new();
        let mut merged_sparse: SparsePushMap<P::Value> = SparsePushMap::new(mask_words);
        let mut sparse_order: Vec<(u32, usize)> = Vec::new();
        // The global executor claims the layout's chunks one at a time across
        // every node; measured per-chunk costs feed the simulated-cluster
        // schedule after each phase.
        let global_scheduler = ChunkScheduler::new(total_workers, 1);
        let num_chunks = self.layout.chunks().len();
        let mut chunk_costs: Vec<u64> = vec![0u64; num_chunks];
        let mut merge_work_by_node: Vec<u64> = vec![0u64; num_nodes];

        // Chunk-level activity state (see the module docs): which chunks the
        // next phase may skip, which min/max chunks have gathered every
        // in-edge at least once past their rr gate, and — for arithmetic
        // programs under the multi ruler — how many of each chunk's vertices
        // have early-converged. All of it is derived from barrier-merged state,
        // so skip decisions are identical at every worker count.
        let mut chunk_skip = vec![false; num_chunks];
        let mut chunk_caught_up = vec![false; num_chunks];
        let mut chunk_converged: Vec<u32> = vec![0; num_chunks];
        let mut newly_converged: Vec<u32> = vec![0; num_chunks];

        // The run recorder is the single write point for per-iteration data:
        // it feeds both the iteration trace (config.trace) and the span layer
        // plus iteration-wall histogram (config.telemetry). Spans buffer
        // locally and flush to the hub once at `finish`.
        let mut rec = RunRecorder::new(&self.telemetry, self.config.trace);
        let mut totals = seed.preset;
        let mut simulated_exec_seconds = 0.0f64;

        let mut last_mode_was_pull = false;
        let mut converged = false;
        let mut iterations_run = 0u32;

        for iter in 1..=self.config.max_iterations {
            let mut force_flush = false;
            if !arithmetic && active_count == 0 {
                // The active set is empty. Without RR every vertex was computed in
                // every pull, so the fixpoint is reached. With RR, vertices whose
                // guidance level was never covered may still be missing updates they
                // skipped; Algorithm 3's transition handles this, so force one flush
                // push (full reactivation) before declaring convergence.
                if covered_level >= max_level {
                    converged = true;
                    break;
                }
                force_flush = true;
            }
            iterations_run = iter;
            let iter_span = rec.begin();
            let mode = if force_flush || (seed.push_only && !arithmetic) {
                Mode::Push
            } else {
                self.select_mode(program, &active, active_count)
            };
            let mode_name = match mode {
                Mode::Pull => "pull",
                Mode::Push => "push",
            };
            let full_push = mode == Mode::Push && (last_mode_was_pull || force_flush);
            let comm_before = self.cluster.comm_stats();
            // Out-of-core accounting: the buffer pool's monotone fault
            // counters, deltaed per iteration into the trace and run totals.
            let pool_before = self.storage.as_ref().map(|s| s.pool().counters());

            let mut iter_counters = Counters::zero();
            let mut changed_this_iter = 0usize;
            let mut iteration_node_makespan = 0u64;
            next_active.clear();
            chunk_costs.fill(0);

            // Algorithm 3 lines 2-4: re-activate everything on a pull -> push
            // transition (or a forced flush) so updates from vertices that RR
            // deactivated still reach their successors.
            if full_push {
                active.fill();
                active_count = n;
            }

            // Synchronous (BSP) semantics: every edge computation of this iteration
            // reads the values of the *previous* iteration, exactly like the paper's
            // Bellman-Ford-style iteration plot (Figure 1b) and like a distributed
            // engine whose remote values only refresh at iteration boundaries.
            prev_values.copy_from_slice(&values);

            // Chunk activity summaries: decide which chunks this phase can skip
            // outright. No rule below changes any value, frontier bit or
            // vertex-update count (see the module docs for the safety argument
            // per rule), and every input is barrier-merged state, so the
            // decision — and with it every counter — is deterministic at any
            // worker count. The sequential `workers == 1` push path stays
            // chunk-free and therefore untouched.
            let global_phase = !(mode == Mode::Push && workers == 1);
            // Ruler bounds are only consulted by ruler-gated min/max runs, and
            // computing them is an O(V) scan — warm (rulers-off) restarts must
            // not pay it, so it stays behind the lazy accessor.
            let rr_bounds = (rr && !arithmetic).then(|| self.chunk_rr_bounds());
            if global_phase {
                let chunks = self.layout.chunks();
                for (ci, chunk) in chunks.iter().enumerate() {
                    chunk_skip[ci] = match mode {
                        // A push chunk with no active source does nothing. The
                        // popcount is affordable by construction on contiguous
                        // partitionings (span ≈ chunk size); a foreign-id-
                        // riddled span that would cost more words to probe
                        // than the chunk's own work is simply visited.
                        Mode::Push => {
                            let probe_words = (chunk.span_end - chunk.span_start) as u64 / 64 + 1;
                            probe_words <= chunk.estimate
                                && active.count_in_range(
                                    chunk.span_start as usize,
                                    chunk.span_end as usize,
                                ) == 0
                        }
                        Mode::Pull if arithmetic => {
                            // Every vertex early-converged: each would be
                            // individually skipped by the multi ruler.
                            rr && chunk_converged[ci] as usize == chunk.len()
                        }
                        Mode::Pull => {
                            if rr_bounds.is_some_and(|b| iter < b[ci].0) {
                                // Entirely rr-gated: every vertex "starts late".
                                true
                            } else if chunk.has_no_in_edges() {
                                // Nothing to gather, min/max apply is a no-op.
                                true
                            } else {
                                // Caught-up chunk none of whose in-neighbors
                                // changed last iteration: every gather would
                                // refold the exact bits it already folded. The
                                // probe is bounded by the gather it can skip:
                                // a hub-wide in-span whose frontier words
                                // outnumber the chunk's estimated work is not
                                // worth probing.
                                let probe_words = (chunk.in_end - chunk.in_start) as u64 / 64 + 1;
                                chunk_caught_up[ci]
                                    && probe_words <= chunk.estimate
                                    && !active.any_in_range(
                                        chunk.in_start as usize,
                                        chunk.in_end as usize,
                                    )
                            }
                        }
                    };
                    if chunk_skip[ci] {
                        iter_counters.chunks_skipped += 1;
                    }
                }
            }
            // Sparse-vs-dense push scratch: below the density threshold the
            // workers fold into compact maps; the representation is chosen once
            // per phase from merged state, so it too is worker-count-invariant.
            let sparse_push = mode == Mode::Push
                && global_phase
                && (active_count as f64) < self.config.sparse_push_density * n as f64;
            if mode == Mode::Push && global_phase && !sparse_push {
                // A dense phase supersedes the maps: release their capacity so
                // mixed runs do not hold both representations at peak (the
                // sparse tail after the dense wave regrows small maps cheaply).
                for ws in worker_states.iter_mut() {
                    ws.ensure_dense(n, mask_words, program.identity());
                    ws.sparse.release();
                }
                merged_sparse.release();
                if merged_touched.len() != n {
                    merged_values = vec![program.identity(); n];
                    merged_touched = Bitset::new(n);
                    merged_nodes = vec![0u64; n * mask_words];
                }
            }

            if mode == Mode::Push && workers == 1 {
                // Historical sequential push: nodes in ascending order with
                // per-edge counting — the `workers_per_node: 1` oracle path the
                // determinism guarantees are anchored to.
                let phase_span = rec.begin();
                for node in self.cluster.nodes() {
                    let outcome = self.push_phase_sequential(
                        program,
                        out_store,
                        node,
                        iter,
                        tolerance,
                        &active,
                        &prev_values,
                        &mut values,
                        &mut next_active,
                        &mut changed_this_iter,
                        &mut last_changed_iter,
                        &mut iter_counters,
                    );
                    per_node_worker_work[node][0] += outcome.total_work;
                    self.cluster.record_node_work(node, outcome.total_work);
                    iteration_node_makespan = iteration_node_makespan.max(outcome.makespan());
                }
                // Sequential push executes on the calling thread (worker 0);
                // the execute window coincides with the phase.
                rec.end_on(phase_span, "execute", mode_name, 0);
                rec.end(phase_span, "phase", mode_name);
            } else {
                // One global phase: every node's chunks on the machine-wide pool.
                let phase_span = rec.begin();
                match mode {
                    Mode::Pull => {
                        newly_converged.fill(0);
                        self.pull_phase_global(
                            program,
                            in_store,
                            iter,
                            rr,
                            arithmetic,
                            tolerance,
                            &prev_values,
                            &mut values,
                            &mut stable_count,
                            &mut stable_value,
                            &mut last_changed_iter,
                            &mut worker_states,
                            &global_scheduler,
                            &mut chunk_costs,
                            &chunk_skip,
                            &mut newly_converged,
                        );
                        if arithmetic && rr {
                            for (count, fresh) in chunk_converged.iter_mut().zip(&newly_converged) {
                                *count += fresh;
                            }
                        }
                    }
                    Mode::Push => self.push_phase_global(
                        program,
                        out_store,
                        iter,
                        tolerance,
                        &active,
                        &prev_values,
                        &mut values,
                        &mut next_active,
                        &mut changed_this_iter,
                        &mut last_changed_iter,
                        &mut iter_counters,
                        &mut worker_states,
                        &global_scheduler,
                        &mut chunk_costs,
                        &chunk_skip,
                        sparse_push,
                        &mut merged_values,
                        &mut merged_touched,
                        &mut merged_nodes,
                        &mut merged_sparse,
                        &mut sparse_order,
                        mask_words,
                        &mut merge_work_by_node,
                    ),
                }
                rec.end(phase_span, "phase", mode_name);
                // The phase's pool barrier has passed: every worker's execute
                // window is quiescent, so draining them here is race-free (the
                // "per-worker lock-free buffers drained at barriers" rule).
                for (w, ws) in worker_states.iter_mut().enumerate() {
                    rec.worker_window(&mut ws.window, "execute", mode_name, w as u32);
                }
                if mode == Mode::Push {
                    // High-water mark of the push gather scratch actually
                    // allocated (capacities persist across `clear`, so this is
                    // the live footprint, not the phase's touched count). Each
                    // worker reports its own live footprint; the shared merge
                    // buffers are the engine's. The barrier merge below sums
                    // the concurrent windows (`Counters::merge_concurrent`) —
                    // every worker's scratch is live *simultaneously* at this
                    // barrier, so a max would under-report the true peak by up
                    // to the worker count.
                    for ws in worker_states.iter_mut() {
                        ws.counters.scratch_bytes_peak = ws.scratch_bytes();
                    }
                    iter_counters.scratch_bytes_peak =
                        (merged_values.len() * std::mem::size_of::<P::Value>()
                            + merged_touched.words().len() * 8
                            + merged_nodes.len() * 8) as u64
                            + merged_sparse.bytes();
                }

                // Merge per-worker scratch at the iteration barrier: counters,
                // change tallies, activated frontier bits and the message
                // matrix. Concurrent-window semantics: flow counters sum, and
                // so do the simultaneously-live scratch footprints.
                let barrier_span = rec.begin();
                let merge_span = rec.begin();
                for ws in worker_states.iter_mut() {
                    iter_counters = iter_counters.merge_concurrent(ws.counters);
                    ws.counters = Counters::zero();
                    changed_this_iter += ws.changed;
                    ws.changed = 0;
                    if ws.next_frontier.any() {
                        next_active.union_with(&ws.next_frontier);
                        ws.next_frontier.clear();
                    }
                    for src_node in 0..num_nodes {
                        for dst_node in 0..num_nodes {
                            let idx = src_node * num_nodes + dst_node;
                            if ws.messages[idx] != 0 {
                                self.cluster.record_node_messages(
                                    src_node,
                                    dst_node,
                                    ws.messages[idx],
                                    ws.bytes[idx],
                                );
                                ws.messages[idx] = 0;
                                ws.bytes[idx] = 0;
                            }
                        }
                    }
                }
                rec.end(merge_span, "merge", "engine");

                // Simulated-cluster accounting: in the *model* each node still
                // only has `workers_per_node` workers, however many pool threads
                // physically ran its chunks. Re-assign the measured per-chunk
                // costs greedily (least-loaded, layout order — what stealing
                // converges to); apply work joins the owner's least-loaded
                // worker. The iteration is bounded by the slowest node's busiest
                // worker; because chunk costs are deterministic, so is the whole
                // schedule, at every worker count.
                for node in self.cluster.nodes() {
                    let mut sim =
                        self.layout
                            .simulate_node(node, workers, self.config.scheduling, |c| {
                                chunk_costs[c]
                            });
                    let merge = std::mem::take(&mut merge_work_by_node[node]);
                    if merge > 0 {
                        let (idx, _) = sim
                            .per_worker_work
                            .iter()
                            .enumerate()
                            .min_by_key(|(i, &w)| (w, *i))
                            .expect("at least one worker");
                        sim.per_worker_work[idx] += merge;
                        sim.total_work += merge;
                    }
                    for (w, load) in per_node_worker_work[node]
                        .iter_mut()
                        .zip(&sim.per_worker_work)
                    {
                        *w += load;
                    }
                    self.cluster.record_node_work(node, sim.total_work);
                    iteration_node_makespan = iteration_node_makespan.max(sim.makespan());
                }
                rec.end(barrier_span, "barrier", "engine");
            }

            // Graduate min/max chunks to frontier-based pull skipping: a chunk
            // is "caught up" once every one of its vertices has gathered all
            // its in-edges at least once with no rr gate left to reopen —
            // i.e. after a pull visit, or a fully-reactivated push (which
            // delivers every in-edge to everyone), at an iteration at or past
            // the chunk's max `last_iter`. From then on the incremental
            // invariant holds: only an active in-neighbor can change anything
            // the chunk gathers.
            if !arithmetic {
                match mode {
                    Mode::Pull => {
                        for (ci, (caught, &skipped)) in
                            chunk_caught_up.iter_mut().zip(&chunk_skip).enumerate()
                        {
                            if !skipped && rr_bounds.is_none_or(|b| iter >= b[ci].1) {
                                *caught = true;
                            }
                        }
                    }
                    Mode::Push if full_push => {
                        for (ci, caught) in chunk_caught_up.iter_mut().enumerate() {
                            if rr_bounds.is_none_or(|b| iter >= b[ci].1) {
                                *caught = true;
                            }
                        }
                    }
                    Mode::Push => {}
                }
            }

            // Arithmetic programs apply vertexUpdate inside the pull computation
            // (the update is part of the per-vertex work, Algorithm 5); nothing
            // extra to do here.

            let comm_after = self.cluster.comm_stats();
            let iter_messages = comm_after.messages - comm_before.messages;
            let iter_bytes = comm_after.bytes - comm_before.bytes;
            iter_counters.messages_sent = iter_messages;
            iter_counters.bytes_sent = iter_bytes;
            if let (Some(before), Some(storage)) = (pool_before, &self.storage) {
                let after = storage.pool().counters();
                iter_counters.segments_faulted += after.segments_faulted - before.segments_faulted;
                iter_counters.segment_bytes_read +=
                    after.segment_bytes_read - before.segment_bytes_read;
            }

            let comm_seconds = self
                .cluster
                .config()
                .comm_cost
                .seconds(iter_messages, iter_bytes);
            let compute_seconds = self.config.cost.seconds(iteration_node_makespan);
            simulated_exec_seconds += compute_seconds + comm_seconds;

            totals += iter_counters;
            rec.end_iteration(
                iter_span,
                iter,
                mode,
                active_count,
                iter_counters,
                compute_seconds + comm_seconds,
            );

            std::mem::swap(&mut active, &mut next_active);
            active_count = active.count_ones();
            last_mode_was_pull = mode == Mode::Pull;
            match mode {
                // A pull at iteration `iter` gathered every vertex with
                // `last_iter <= iter` from all of its in-neighbors.
                Mode::Pull => covered_level = covered_level.max(iter),
                // A fully re-activated push delivered every vertex's value to every
                // successor, which covers all remaining levels.
                Mode::Push if full_push => covered_level = max_level,
                Mode::Push => {}
            }

            // Arithmetic termination: a fixpoint is reached when no vertex changed.
            // Min/max termination is handled at the top of the next iteration so the
            // RR flush push can run first if needed.
            if arithmetic && changed_this_iter == 0 {
                converged = true;
                break;
            }
        }
        if !arithmetic && active_count == 0 && covered_level >= max_level {
            converged = true;
        }

        // Always 0 with the persistent pool (threads spawn at engine build):
        // a nonzero delta here means per-phase spawning has regressed.
        totals.threads_spawned += self.pool.threads_spawned() - spawned_before;

        let mut stats = ExecutionStats::new("slfe", program.name());
        stats.num_vertices = n;
        stats.num_edges = graph.num_edges();
        stats.num_nodes = num_nodes;
        stats.workers_per_node = workers;
        stats.iterations = iterations_run;
        stats.totals = totals;
        stats.phases = PhaseBreakdown {
            preprocessing_seconds: if rr { self.preprocessing_seconds } else { 0.0 },
            execution_seconds: simulated_exec_seconds,
        };
        stats.trace = rec.finish();
        stats.per_node_work = self.cluster.per_node_work();

        ProgramResult {
            values,
            stats,
            last_changed_iter,
            per_node_worker_work,
            converged,
        }
    }

    /// Direction selection: arithmetic programs always pull; min/max programs pull
    /// when the active edge fraction exceeds the threshold (dense frontier) and push
    /// otherwise (Gemini's heuristic, inherited by the paper).
    fn select_mode<P: GraphProgram>(
        &self,
        program: &P,
        active: &Bitset,
        active_count: usize,
    ) -> Mode {
        if program.aggregation() == AggregationKind::Arithmetic {
            return Mode::Pull;
        }
        if active_count == 0 {
            // Only reachable for the RR flush: a push with full reactivation
            // delivers any updates that "late started" vertices missed.
            return Mode::Push;
        }
        let active_edges: u64 = active
            .iter_ones()
            .map(|v| self.graph.out_degree(v as VertexId) as u64)
            .sum();
        let threshold = self.graph.num_edges() as f64 * self.config.pull_threshold;
        if active_edges as f64 > threshold {
            Mode::Pull
        } else {
            Mode::Push
        }
    }

    /// One iteration's **global** pull phase: every node's owned destinations
    /// gather over their incoming edges, with all the layout's chunks claimed
    /// by the machine-wide pool at once (cross-node parallelism). Each
    /// destination is written by exactly one worker, so workers share the
    /// value/ruler slices without synchronisation; measured per-chunk costs
    /// land in `chunk_costs` for the simulated-cluster schedule. Chunks
    /// flagged in `skip` (cold per the activity summaries) are left untouched
    /// at zero cost; `newly_converged[ci]` reports how many of chunk `ci`'s
    /// vertices crossed the multi ruler's stability threshold this phase.
    #[allow(clippy::too_many_arguments)]
    fn pull_phase_global<P: GraphProgram, S: AdjacencyStore>(
        &self,
        program: &P,
        in_store: &S,
        iter: u32,
        rr: bool,
        arithmetic: bool,
        tolerance: f64,
        prev_values: &[P::Value],
        values: &mut [P::Value],
        stable_count: &mut [u32],
        stable_value: &mut [P::Value],
        last_changed_iter: &mut [u32],
        worker_states: &mut [WorkerScratch<P::Value>],
        scheduler: &ChunkScheduler,
        chunk_costs: &mut [u64],
        skip: &[bool],
        newly_converged: &mut [u32],
    ) {
        let chunks = self.layout.chunks();
        let values_shared = SharedSlice::new(values);
        let stable_count_shared = SharedSlice::new(stable_count);
        let stable_value_shared = SharedSlice::new(stable_value);
        let last_changed_shared = SharedSlice::new(last_changed_iter);
        let costs_shared = SharedSlice::new(chunk_costs);
        let converged_shared = SharedSlice::new(newly_converged);
        // `None` when telemetry is off: the hot closure then reads no clocks
        // at all — the off path stays bit-and-instruction-identical.
        let clock = self.telemetry.clock_if_enabled();

        scheduler.run_workers(
            &self.pool,
            chunks.len(),
            self.config.scheduling,
            worker_states,
            |ws, ci| {
                if skip[ci] {
                    return 0;
                }
                let began = clock.map(|c| c.now_ns());
                let chunk = &chunks[ci];
                let owned = self.cluster.vertices_of(chunk.node);
                let mut chunk_work = 0u64;
                let mut converged_now = 0u32;
                // Destinations stream in ascending id order, so this cursor
                // pins (and, out of core, faults) one CSC segment at a time;
                // skipped chunks never reach here and fault nothing.
                let mut in_cursor = StreamCursor::new(in_store);
                for &dst in &owned[chunk.start..chunk.end] {
                    // Safety: `dst` is owned by exactly one chunk, and each chunk is
                    // processed by exactly one worker, so every shared-slice index
                    // below is touched by this worker only.
                    chunk_work += unsafe {
                        self.pull_vertex(
                            program,
                            &mut in_cursor,
                            dst,
                            iter,
                            rr,
                            arithmetic,
                            tolerance,
                            prev_values,
                            &values_shared,
                            &stable_count_shared,
                            &stable_value_shared,
                            &last_changed_shared,
                            ws,
                            &mut converged_now,
                        )
                    };
                }
                // Safety: each cost/converged slot belongs to this chunk's
                // single processor.
                unsafe { costs_shared.set(ci, chunk_work) };
                unsafe { converged_shared.set(ci, converged_now) };
                if let Some(c) = clock {
                    ws.window.cover(began.unwrap_or(0), c.now_ns());
                }
                chunk_work
            },
        );
    }

    /// Pull-mode processing of one destination vertex (Algorithm 2).
    /// Returns the counted work performed.
    ///
    /// # Safety
    /// The caller must guarantee exclusive access to index `dst` of every shared
    /// slice for the duration of the call.
    #[allow(clippy::too_many_arguments)]
    unsafe fn pull_vertex<P: GraphProgram, S: AdjacencyStore>(
        &self,
        program: &P,
        in_cursor: &mut StreamCursor<'_, S>,
        dst: VertexId,
        iter: u32,
        rr: bool,
        arithmetic: bool,
        tolerance: f64,
        prev_values: &[P::Value],
        values: &SharedSlice<P::Value>,
        stable_count: &SharedSlice<u32>,
        stable_value: &SharedSlice<P::Value>,
        last_changed_iter: &SharedSlice<u32>,
        ws: &mut WorkerScratch<P::Value>,
        converged_now: &mut u32,
    ) -> u64 {
        let d = dst as usize;
        if rr {
            if arithmetic {
                // Multi ruler ("finish early"): skip early-converged vertices. Every
                // vertex computes at least once (threshold of at least 1).
                let threshold = self.rrg.last_iter(dst).max(1);
                if stable_count.get(d) >= threshold {
                    return 0;
                }
            } else {
                // Single ruler ("start late"): skip until the iteration number
                // reaches the vertex's last propagation level.
                if iter < self.rrg.last_iter(dst) {
                    return 0;
                }
            }
        }

        let num_nodes = self.cluster.num_nodes();
        let mut work = 0u64;
        let mut gathered = program.identity();
        let mut has_contribution = false;
        let dst_owner = self.cluster.owner_of(dst);
        // Pull-mode communication follows Gemini's mirror aggregation: each remote
        // node combines the contributions of its local in-edges and sends a single
        // partial result to the destination's owner. In-neighbor lists are sorted by
        // vertex id and chunking makes ownership monotone in the id, so de-duplicating
        // consecutive owners counts exactly one message per contributing remote node.
        let mut last_remote_owner = usize::MAX;
        // Resolved after the ruler gates above, so a gated vertex faults no
        // segment. Both stores serve the same sorted list.
        let (in_targets, in_weights) = in_cursor.list(dst);
        for (&src, &weight) in in_targets.iter().zip(in_weights) {
            work += 1;
            ws.counters.edge_computations += 1;
            if let Some(contribution) =
                program.edge_contribution(src, prev_values[src as usize], weight)
            {
                gathered = program.combine(gathered, contribution);
                has_contribution = true;
                let src_owner = self.cluster.owner_of(src);
                if src_owner != dst_owner && src_owner != last_remote_owner {
                    ws.record_message(num_nodes, src_owner, dst_owner, UPDATE_MESSAGE_BYTES);
                    last_remote_owner = src_owner;
                }
            }
        }

        let old = values.get(d);
        // Min/max programs must not fold the identity (e.g. +inf) into a vertex that
        // received no contribution; arithmetic programs always re-apply, because an
        // empty gather legitimately means "the sum of my in-neighbors is zero"
        // (PageRank's pure-teleport vertices, TunkRank accounts with no followers).
        let mut new = if has_contribution || arithmetic {
            program.apply(dst, old, gathered)
        } else {
            old
        };
        if arithmetic {
            new = program.vertex_update(dst, new, &self.degrees);
            work += 1;
        }
        let changed = program.changed(old, new, tolerance);
        if changed {
            values.set(d, new);
            ws.counters.vertex_updates += 1;
            work += 1;
            last_changed_iter.set(d, iter);
            ws.changed += 1;
            ws.next_frontier.set(d);
        }
        if arithmetic {
            // Stability bookkeeping for the multi ruler (Algorithm 5, lines 15-18).
            if program.changed(stable_value.get(d), new, tolerance) {
                stable_value.set(d, new);
                stable_count.set(d, 0);
            } else {
                let stabilized = stable_count.get(d) + 1;
                stable_count.set(d, stabilized);
                // The vertex just crossed its "finish early" threshold: from
                // the next pull on it is skipped forever, so this fires at
                // most once per vertex — the chunk-level converged counts
                // stay exact.
                if rr && stabilized == self.rrg.last_iter(dst).max(1) {
                    *converged_now += 1;
                }
            }
        }
        work
    }

    /// One node's push phase on a single worker: the historical sequential path,
    /// kept verbatim so `workers_per_node: 1` reproduces the pre-parallelism
    /// engine bit-for-bit (per-edge update counting included).
    #[allow(clippy::too_many_arguments)]
    fn push_phase_sequential<P: GraphProgram, S: AdjacencyStore>(
        &self,
        program: &P,
        out_store: &S,
        node: usize,
        iter: u32,
        tolerance: f64,
        active: &Bitset,
        prev_values: &[P::Value],
        values: &mut [P::Value],
        next_active: &mut Bitset,
        changed_this_iter: &mut usize,
        last_changed_iter: &mut [u32],
        counters: &mut Counters,
    ) -> slfe_cluster::ScheduleOutcome {
        let owned = self.cluster.vertices_of(node);
        let mut work = 0u64;
        // Owned vertices ascend, so one cursor streams the node's CSR
        // segments in order; inactive sources never touch it.
        let mut out_cursor = StreamCursor::new(out_store);
        for &src in owned {
            if !active.get(src as usize) {
                continue;
            }
            work += self.push_vertex(
                program,
                &mut out_cursor,
                src,
                iter,
                tolerance,
                prev_values,
                values,
                next_active,
                changed_this_iter,
                last_changed_iter,
                counters,
            );
        }
        slfe_cluster::ScheduleOutcome {
            per_worker_work: vec![work],
            total_work: work,
        }
    }

    /// Push-mode processing of one **active** source vertex (Algorithm 3),
    /// sequential path. Returns the counted work performed.
    #[allow(clippy::too_many_arguments)]
    fn push_vertex<P: GraphProgram, S: AdjacencyStore>(
        &self,
        program: &P,
        out_cursor: &mut StreamCursor<'_, S>,
        src: VertexId,
        iter: u32,
        tolerance: f64,
        prev_values: &[P::Value],
        values: &mut [P::Value],
        next_active: &mut Bitset,
        changed_this_iter: &mut usize,
        last_changed_iter: &mut [u32],
        counters: &mut Counters,
    ) -> u64 {
        let s = src as usize;
        let (out_targets, out_weights) = out_cursor.list(src);
        if out_targets.is_empty() {
            return 0;
        }
        let mut work = 0u64;
        let src_owner = self.cluster.owner_of(src);
        let src_value = prev_values[s];
        for (&dst, &weight) in out_targets.iter().zip(out_weights) {
            work += 1;
            counters.edge_computations += 1;
            let Some(contribution) = program.edge_contribution(src, src_value, weight) else {
                continue;
            };
            let d = dst as usize;
            let old = values[d];
            let new = program.apply(dst, old, contribution);
            if program.changed(old, new, tolerance) {
                values[d] = new;
                counters.vertex_updates += 1;
                work += 1;
                last_changed_iter[d] = iter;
                *changed_this_iter += 1;
                next_active.set(d);
                // Remote destinations receive the update as a message.
                if self.cluster.owner_of(dst) != src_owner {
                    self.cluster
                        .record_update_message(src, dst, UPDATE_MESSAGE_BYTES);
                }
            }
        }
        work
    }

    /// Apply one merged push destination: fold the combined contribution into
    /// the value, and on a change update the frontier/counters and charge one
    /// sender-aggregated message per contributing remote node (from `mask`).
    /// Shared by the dense and sparse barrier merges — identical per
    /// destination by construction, which is what makes the two scratch
    /// representations bit-equivalent.
    #[allow(clippy::too_many_arguments)]
    fn apply_merged_destination<P: GraphProgram>(
        &self,
        program: &P,
        iter: u32,
        tolerance: f64,
        d: usize,
        contribution: P::Value,
        mask: &[u64],
        values: &mut [P::Value],
        next_active: &mut Bitset,
        changed_this_iter: &mut usize,
        last_changed_iter: &mut [u32],
        counters: &mut Counters,
        merge_work_by_node: &mut [u64],
    ) {
        let dst = d as VertexId;
        let old = values[d];
        let new = program.apply(dst, old, contribution);
        if program.changed(old, new, tolerance) {
            values[d] = new;
            counters.vertex_updates += 1;
            last_changed_iter[d] = iter;
            *changed_this_iter += 1;
            next_active.set(d);
            let dst_owner = self.cluster.owner_of(dst);
            merge_work_by_node[dst_owner] += 1;
            for (w, &mask_word) in mask.iter().enumerate() {
                let mut word = mask_word;
                while word != 0 {
                    let src_node = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    if src_node != dst_owner {
                        self.cluster.record_node_messages(
                            src_node,
                            dst_owner,
                            1,
                            UPDATE_MESSAGE_BYTES,
                        );
                    }
                }
            }
        }
    }

    /// One iteration's **global** push phase on the machine-wide pool. Workers
    /// fold each destination's contributions into worker-local scratch —
    /// dense O(n) buffers, or compact open-addressed maps when `sparse`
    /// (frontier density below the configured threshold) — tagging the
    /// contributing sender node in a per-destination mask; the barrier
    /// combines the scratch and applies each destination exactly once
    /// (ascending destination order in both representations). A min/max
    /// `combine` is idempotent, commutative and associative, so the merged
    /// values are identical to the sequential result regardless of chunk
    /// assignment *and* of scratch representation (arithmetic programs never
    /// push). Messages are charged once per changed remote destination per
    /// contributing sender node; apply work is attributed to the destination's
    /// owner in `merge_work_by_node`. Chunks flagged in `skip` hold no active
    /// source and are left untouched at zero cost.
    #[allow(clippy::too_many_arguments)]
    fn push_phase_global<P: GraphProgram, S: AdjacencyStore>(
        &self,
        program: &P,
        out_store: &S,
        iter: u32,
        tolerance: f64,
        active: &Bitset,
        prev_values: &[P::Value],
        values: &mut [P::Value],
        next_active: &mut Bitset,
        changed_this_iter: &mut usize,
        last_changed_iter: &mut [u32],
        counters: &mut Counters,
        worker_states: &mut [WorkerScratch<P::Value>],
        scheduler: &ChunkScheduler,
        chunk_costs: &mut [u64],
        skip: &[bool],
        sparse: bool,
        merged_values: &mut [P::Value],
        merged_touched: &mut Bitset,
        merged_nodes: &mut [u64],
        merged_sparse: &mut SparsePushMap<P::Value>,
        sparse_order: &mut Vec<(u32, usize)>,
        mask_words: usize,
        merge_work_by_node: &mut [u64],
    ) {
        let chunks = self.layout.chunks();
        let costs_shared = SharedSlice::new(chunk_costs);
        let identity = program.identity();
        // `None` when telemetry is off: the hot closure then reads no clocks.
        let clock = self.telemetry.clock_if_enabled();

        scheduler.run_workers(
            &self.pool,
            chunks.len(),
            self.config.scheduling,
            worker_states,
            |ws, ci| {
                if skip[ci] {
                    return 0;
                }
                let began = clock.map(|c| c.now_ns());
                let chunk = &chunks[ci];
                let owned = self.cluster.vertices_of(chunk.node);
                // Every source in this chunk is owned by `chunk.node` — the
                // sender-side aggregation unit of the message accounting.
                let node_word = chunk.node / 64;
                let node_bit = 1u64 << (chunk.node % 64);
                let mut chunk_work = 0u64;
                // Active sources stream in ascending id order; only they
                // fault CSR segments (a frontier-empty chunk was skipped
                // before this closure ran).
                let mut out_cursor = StreamCursor::new(out_store);
                let mut process_source = |ws: &mut WorkerScratch<P::Value>, src: VertexId| -> u64 {
                    let (out_targets, out_weights) = out_cursor.list(src);
                    if out_targets.is_empty() {
                        return 0;
                    }
                    let mut work = 0u64;
                    let src_value = prev_values[src as usize];
                    for (&dst, &weight) in out_targets.iter().zip(out_weights) {
                        work += 1;
                        ws.counters.edge_computations += 1;
                        let Some(contribution) = program.edge_contribution(src, src_value, weight)
                        else {
                            continue;
                        };
                        let d = dst as usize;
                        if sparse {
                            let (slot, fresh) = ws.sparse.slot_for(dst, identity);
                            if fresh {
                                ws.sparse.values[slot] = contribution;
                            } else {
                                ws.sparse.values[slot] =
                                    program.combine(ws.sparse.values[slot], contribution);
                            }
                            if mask_words > 0 {
                                ws.sparse.masks[slot * mask_words + node_word] |= node_bit;
                            }
                        } else {
                            if ws.touched.insert(d) {
                                ws.local_values[d] = contribution;
                            } else {
                                ws.local_values[d] =
                                    program.combine(ws.local_values[d], contribution);
                            }
                            if mask_words > 0 {
                                ws.contrib_nodes[d * mask_words + node_word] |= node_bit;
                            }
                        }
                    }
                    work
                };
                if (chunk.span_end - chunk.span_start) as usize == chunk.len() {
                    // Contiguous chunk (the default chunking partitioner): the
                    // own-vertex span IS the chunk, so walk the frontier's set
                    // bits word by word instead of testing every vertex — the
                    // per-chunk cost of a sparse phase becomes proportional to
                    // its active sources. Ascending order, exactly like the
                    // dense scan.
                    active.for_each_set_in_range(
                        chunk.span_start as usize,
                        chunk.span_end as usize,
                        |s| chunk_work += process_source(ws, s as VertexId),
                    );
                } else {
                    for &src in &owned[chunk.start..chunk.end] {
                        if active.get(src as usize) {
                            chunk_work += process_source(ws, src);
                        }
                    }
                }
                // Safety: each cost slot belongs to this chunk's single processor.
                unsafe { costs_shared.set(ci, chunk_work) };
                if let Some(c) = clock {
                    ws.window.cover(began.unwrap_or(0), c.now_ns());
                }
                chunk_work
            },
        );

        if sparse {
            // Barrier, sparse representation: fold every worker's live entries
            // into one combined map (order-free — min/max `combine` and the
            // mask ORs are commutative), then apply in ascending destination
            // order, exactly like the dense path's `iter_ones` walk.
            for ws in worker_states.iter_mut() {
                ws.sparse.for_each(|dst, value, mask| {
                    let (slot, fresh) = merged_sparse.slot_for(dst, identity);
                    if fresh {
                        merged_sparse.values[slot] = value;
                    } else {
                        merged_sparse.values[slot] =
                            program.combine(merged_sparse.values[slot], value);
                    }
                    for (w, &m) in mask.iter().enumerate() {
                        merged_sparse.masks[slot * mask_words + w] |= m;
                    }
                });
                ws.sparse.clear();
            }
            sparse_order.clear();
            for (slot, &key) in merged_sparse.keys.iter().enumerate() {
                if key != EMPTY_KEY {
                    sparse_order.push((key, slot));
                }
            }
            sparse_order.sort_unstable();
            for &(dst, slot) in sparse_order.iter() {
                self.apply_merged_destination(
                    program,
                    iter,
                    tolerance,
                    dst as usize,
                    merged_sparse.values[slot],
                    &merged_sparse.masks[slot * mask_words..(slot + 1) * mask_words],
                    values,
                    next_active,
                    changed_this_iter,
                    last_changed_iter,
                    counters,
                    merge_work_by_node,
                );
            }
            merged_sparse.clear();
            return;
        }

        // Barrier, dense representation: combine the worker-local buffers once
        // per destination...
        for ws in worker_states.iter_mut() {
            for d in ws.touched.iter_ones() {
                let contribution = ws.local_values[d];
                if merged_touched.insert(d) {
                    merged_values[d] = contribution;
                } else {
                    merged_values[d] = program.combine(merged_values[d], contribution);
                }
                for w in 0..mask_words {
                    merged_nodes[d * mask_words + w] |= ws.contrib_nodes[d * mask_words + w];
                    ws.contrib_nodes[d * mask_words + w] = 0;
                }
            }
            ws.touched.clear();
        }
        // ... then apply each destination exactly once.
        for d in merged_touched.iter_ones() {
            self.apply_merged_destination(
                program,
                iter,
                tolerance,
                d,
                merged_values[d],
                &merged_nodes[d * mask_words..(d + 1) * mask_words],
                values,
                next_active,
                changed_this_iter,
                last_changed_iter,
                counters,
                merge_work_by_node,
            );
            for w in 0..mask_words {
                merged_nodes[d * mask_words + w] = 0;
            }
        }
        merged_touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::AggregationKind;
    use slfe_graph::{generators, EdgeWeight, GraphBuilder, VertexId};

    /// Minimal SSSP used to exercise the engine without depending on `slfe-apps`.
    struct TestSssp {
        root: VertexId,
    }

    impl GraphProgram for TestSssp {
        type Value = f32;

        fn aggregation(&self) -> AggregationKind {
            AggregationKind::MinMax
        }
        fn name(&self) -> &'static str {
            "test-sssp"
        }
        fn initial_value(&self, v: VertexId, _degrees: &Degrees) -> f32 {
            if v == self.root {
                0.0
            } else {
                f32::INFINITY
            }
        }
        fn initial_active(&self, v: VertexId, _degrees: &Degrees) -> bool {
            v == self.root
        }
        fn identity(&self) -> f32 {
            f32::INFINITY
        }
        fn edge_contribution(
            &self,
            _src: VertexId,
            src_value: f32,
            weight: EdgeWeight,
        ) -> Option<f32> {
            if src_value.is_finite() {
                Some(src_value + weight)
            } else {
                None
            }
        }
        fn combine(&self, a: f32, b: f32) -> f32 {
            a.min(b)
        }
        fn apply(&self, _dst: VertexId, old: f32, gathered: f32) -> f32 {
            old.min(gathered)
        }
    }

    /// Minimal PageRank-style arithmetic program.
    struct TestRank {
        damping: f32,
        n: usize,
    }

    impl GraphProgram for TestRank {
        type Value = f32;

        fn aggregation(&self) -> AggregationKind {
            AggregationKind::Arithmetic
        }
        fn name(&self) -> &'static str {
            "test-rank"
        }
        fn initial_value(&self, _v: VertexId, _degrees: &Degrees) -> f32 {
            1.0 / self.n as f32
        }
        fn initial_active(&self, _v: VertexId, _degrees: &Degrees) -> bool {
            true
        }
        fn identity(&self) -> f32 {
            0.0
        }
        fn edge_contribution(&self, _src: VertexId, src_value: f32, _w: EdgeWeight) -> Option<f32> {
            Some(src_value)
        }
        fn combine(&self, a: f32, b: f32) -> f32 {
            a + b
        }
        fn apply(&self, _dst: VertexId, _old: f32, gathered: f32) -> f32 {
            gathered
        }
        fn vertex_update(&self, v: VertexId, value: f32, degrees: &Degrees) -> f32 {
            let rank = (1.0 - self.damping) / self.n as f32 + self.damping * value;
            let out = degrees.out_degree(v);
            if out > 0 {
                rank / out as f32
            } else {
                rank
            }
        }
        fn changed(&self, old: f32, new: f32, tolerance: f64) -> bool {
            (old - new).abs() as f64 > tolerance
        }
    }

    fn weighted_diamond() -> slfe_graph::Graph {
        // 0 -> 1 (1), 1 -> 2 (1), 0 -> 3 (2), 3 -> 4 (2), 2 -> 4 (1), 4 -> 5 (1), 0 -> 5 (10)
        let mut b = GraphBuilder::new();
        b.extend_weighted([
            (0, 1, 1.0),
            (1, 2, 1.0),
            (0, 3, 2.0),
            (3, 4, 2.0),
            (2, 4, 1.0),
            (4, 5, 1.0),
            (0, 5, 10.0),
        ]);
        b.build()
    }

    fn dijkstra(graph: &Graph, root: VertexId) -> Vec<f32> {
        let mut dist = vec![f32::INFINITY; graph.num_vertices()];
        dist[root as usize] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((ordered_float(0.0), root)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            let d = d as f32 / 1000.0;
            if d > dist[v as usize] {
                continue;
            }
            for (u, w) in graph.out_edges(v) {
                let nd = dist[v as usize] + w;
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    heap.push(std::cmp::Reverse((ordered_float(nd), u)));
                }
            }
        }
        dist
    }

    fn ordered_float(f: f32) -> u64 {
        (f * 1000.0) as u64
    }

    #[test]
    fn sssp_on_diamond_matches_dijkstra_with_and_without_rr() {
        let g = weighted_diamond();
        let expected = dijkstra(&g, 0);
        for config in [EngineConfig::default(), EngineConfig::without_rr()] {
            let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 2), config);
            let result = engine.run(&TestSssp { root: 0 });
            for (v, (&got, &want)) in result.values.iter().zip(&expected).enumerate() {
                assert!(
                    (got - want).abs() < 1e-5,
                    "vertex {v}: got {got}, want {want}"
                );
            }
            assert!(result.converged);
        }
    }

    #[test]
    fn sssp_on_rmat_is_identical_with_and_without_rr() {
        let g = generators::rmat(300, 2400, 0.57, 0.19, 0.19, 21);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let with_rr = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default())
            .run(&TestSssp { root });
        let without_rr =
            SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::without_rr())
                .run(&TestSssp { root });
        assert_eq!(with_rr.values.len(), without_rr.values.len());
        for v in 0..with_rr.values.len() {
            let a = with_rr.values[v];
            let b = without_rr.values[v];
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-4,
                "vertex {v}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn rr_reduces_counted_work_for_sssp_on_a_deep_graph() {
        // Layered graphs have a deep propagation structure with a wide (pull-mode)
        // frontier — the regime where "start late" saves the most (paper §2.2).
        let g = generators::layered(12, 60, 6, 4);
        let with_rr = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default())
            .run(&TestSssp { root: 0 });
        let without_rr =
            SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::without_rr())
                .run(&TestSssp { root: 0 });
        // Correctness: identical distances.
        for v in 0..g.num_vertices() {
            let a = with_rr.values[v];
            let b = without_rr.values[v];
            assert!((a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-4);
        }
        // Redundancy reduction: strictly less counted work.
        assert!(
            with_rr.stats.totals.work() < without_rr.stats.totals.work(),
            "RR should reduce work: {} vs {}",
            with_rr.stats.totals.work(),
            without_rr.stats.totals.work()
        );
        assert!(with_rr.stats.totals.vertex_updates <= without_rr.stats.totals.vertex_updates);
    }

    #[test]
    fn rank_converges_and_rr_matches_non_rr_values() {
        let g = generators::rmat(150, 900, 0.57, 0.19, 0.19, 12);
        let program = TestRank {
            damping: 0.85,
            n: g.num_vertices(),
        };
        let config = EngineConfig::default().with_max_iterations(100);
        let with_rr = SlfeEngine::build(&g, ClusterConfig::new(2, 2), config.clone()).run(&program);
        let without_rr = SlfeEngine::build(
            &g,
            ClusterConfig::new(2, 2),
            config.with_redundancy(RedundancyMode::Disabled),
        )
        .run(&program);
        for v in 0..g.num_vertices() {
            assert!(
                (with_rr.values[v] - without_rr.values[v]).abs() < 1e-3,
                "vertex {v}: {} vs {}",
                with_rr.values[v],
                without_rr.values[v]
            );
        }
        assert!(
            with_rr.stats.totals.edge_computations <= without_rr.stats.totals.edge_computations
        );
    }

    #[test]
    fn trace_records_every_iteration_and_mode() {
        let g = generators::path(50);
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = engine.run(&TestSssp { root: 0 });
        assert_eq!(result.stats.trace.len() as u32, result.stats.iterations);
        // A path from a single root keeps a tiny frontier: push should appear.
        let modes: Vec<Mode> = result
            .stats
            .trace
            .records()
            .iter()
            .map(|r| r.mode)
            .collect();
        assert!(modes.contains(&Mode::Push) || modes.contains(&Mode::Pull));
    }

    #[test]
    fn preprocessing_overhead_is_reported_only_with_rr() {
        let g = generators::rmat(200, 1600, 0.57, 0.19, 0.19, 5);
        let rr = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default());
        let no_rr = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::without_rr());
        assert!(rr.preprocessing_seconds() > 0.0);
        let r1 = rr.run(&TestSssp { root: 0 });
        let r2 = no_rr.run(&TestSssp { root: 0 });
        assert!(r1.stats.phases.preprocessing_seconds > 0.0);
        assert_eq!(r2.stats.phases.preprocessing_seconds, 0.0);
    }

    #[test]
    fn per_node_and_per_worker_work_are_populated() {
        let g = generators::rmat(300, 2400, 0.57, 0.19, 0.19, 7);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(4, 3), EngineConfig::default());
        let result = engine.run(&TestSssp { root: 0 });
        assert_eq!(result.stats.per_node_work.len(), 4);
        assert_eq!(result.per_node_worker_work.len(), 4);
        assert!(result.per_node_worker_work.iter().all(|w| w.len() == 3));
        let total_worker: u64 = result.all_worker_work().iter().sum();
        let total_node: u64 = result.stats.per_node_work.iter().sum();
        assert_eq!(total_worker, total_node);
    }

    #[test]
    fn messages_are_zero_on_a_single_node() {
        let g = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 3);
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = engine.run(&TestSssp { root: 0 });
        assert_eq!(result.stats.totals.messages_sent, 0);
        let multi = SlfeEngine::build(&g, ClusterConfig::new(4, 1), EngineConfig::default());
        let result_multi = multi.run(&TestSssp { root: 0 });
        assert!(result_multi.stats.totals.messages_sent > 0);
    }

    #[test]
    fn arithmetic_runs_hit_the_iteration_cap_when_not_converged() {
        let g = generators::rmat(100, 700, 0.57, 0.19, 0.19, 19);
        let program = TestRank {
            damping: 0.85,
            n: g.num_vertices(),
        };
        let config = EngineConfig::default()
            .with_max_iterations(3)
            .with_tolerance(0.0);
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), config);
        let result = engine.run(&program);
        assert_eq!(result.stats.iterations, 3);
        assert!(!result.converged);
    }

    #[test]
    fn empty_graph_runs_trivially() {
        let g = slfe_graph::Graph::from_edges(0, vec![]);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 2), EngineConfig::default());
        let result = engine.run(&TestRank {
            damping: 0.85,
            n: 1,
        });
        assert!(result.values.is_empty());
        assert!(result.converged);
    }

    #[test]
    fn parallel_workers_reproduce_single_worker_values_bit_for_bit() {
        // The determinism guarantee of the module docs: min/max values merge
        // through an idempotent combine, arithmetic gathers fold in fixed CSC
        // order, so every worker count yields identical bits.
        let g = generators::rmat(400, 3600, 0.57, 0.19, 0.19, 33);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        for config in [EngineConfig::default(), EngineConfig::without_rr()] {
            let sequential = SlfeEngine::build(&g, ClusterConfig::new(2, 1), config.clone())
                .run(&TestSssp { root });
            for workers in [2usize, 4] {
                let parallel =
                    SlfeEngine::build(&g, ClusterConfig::new(2, workers), config.clone())
                        .run(&TestSssp { root });
                assert_eq!(
                    sequential
                        .values
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    parallel
                        .values
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    "distances must be bit-identical at {workers} workers"
                );
                assert_eq!(sequential.stats.iterations, parallel.stats.iterations);
                assert_eq!(sequential.converged, parallel.converged);
            }
        }

        let program = TestRank {
            damping: 0.85,
            n: g.num_vertices(),
        };
        let sequential =
            SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default()).run(&program);
        let parallel =
            SlfeEngine::build(&g, ClusterConfig::new(2, 4), EngineConfig::default()).run(&program);
        assert_eq!(
            sequential
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            parallel
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "arithmetic pull gathers fold in fixed CSC order"
        );
    }

    use slfe_graph::UpdateBatch;

    /// Build a seeded random mixed batch (inserts, deletes, reweights) against `g`.
    fn random_batch(g: &Graph, seed: u64, ops: usize, allow_growth: bool) -> UpdateBatch {
        let mut rng = slfe_graph::rng::SplitMix64::seed_from_u64(seed);
        let n = g.num_vertices() as u32;
        let mut batch = UpdateBatch::new();
        for _ in 0..ops {
            let src = rng.range_u32(0, n);
            let hi = if allow_growth { n + 8 } else { n };
            let dst = rng.range_u32(0, hi);
            match rng.range_u32(0, 3) {
                0 => {
                    batch.insert(src, dst, rng.range_f32(1.0, 10.0));
                }
                1 => {
                    // Delete a real out-edge when the vertex has one.
                    let outs = g.out_neighbors(src);
                    if !outs.is_empty() {
                        let pick = outs[rng.range_usize(0, outs.len())];
                        batch.delete(src, pick);
                    }
                }
                _ => {
                    // Reweight a real out-edge when the vertex has one.
                    let outs = g.out_neighbors(src);
                    if !outs.is_empty() {
                        let pick = outs[rng.range_usize(0, outs.len())];
                        batch.insert(src, pick, rng.range_f32(1.0, 10.0));
                    }
                }
            }
        }
        batch
    }

    #[test]
    fn warm_start_sssp_equals_cold_run_on_random_batches() {
        for seed in 0..6u64 {
            let g = generators::rmat(350, 2400, 0.57, 0.19, 0.19, seed + 400);
            let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
            let program = TestSssp { root };
            let batch = random_batch(&g, seed, 30, true);
            let (mutated, effect) = g.apply_batch(&batch);
            let dirty = effect.dirty_bitset(mutated.num_vertices());
            for workers in [1usize, 4] {
                let cluster = ClusterConfig::new(2, workers);
                let old_engine = SlfeEngine::build(&g, cluster.clone(), EngineConfig::default());
                let previous = old_engine.run(&program);
                let warm_engine =
                    SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default());
                let warm = warm_engine.run_from(&program, &previous, &dirty);
                let cold =
                    SlfeEngine::build(&mutated, cluster, EngineConfig::default()).run(&program);
                assert_eq!(
                    warm.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    cold.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "seed {seed}, {workers} workers: warm SSSP diverges from cold"
                );
                assert!(warm.converged);
            }
        }
    }

    #[test]
    fn warm_start_rank_matches_cold_run_within_tolerance() {
        for seed in 0..4u64 {
            let g = generators::rmat(200, 1400, 0.57, 0.19, 0.19, seed + 500);
            let batch = random_batch(&g, seed + 9, 20, false);
            let (mutated, effect) = g.apply_batch(&batch);
            let dirty = effect.dirty_bitset(mutated.num_vertices());
            let program = TestRank {
                damping: 0.85,
                n: mutated.num_vertices(),
            };
            let old_program = TestRank {
                damping: 0.85,
                n: g.num_vertices(),
            };
            let config = EngineConfig::default().with_max_iterations(300);
            for workers in [1usize, 4] {
                let cluster = ClusterConfig::new(2, workers);
                let previous =
                    SlfeEngine::build(&g, cluster.clone(), config.clone()).run(&old_program);
                let warm_engine = SlfeEngine::build(&mutated, cluster.clone(), config.clone());
                let warm = warm_engine.run_from(&program, &previous, &dirty);
                // The warm restart runs without the multi ruler and reaches the
                // exact fixpoint; the oracle is therefore a ruler-free cold run.
                // (A ruler-approximated cold run can legitimately deviate by the
                // ruler's own freezing error, which is not what is under test.)
                let cold_exact = SlfeEngine::build(
                    &mutated,
                    cluster,
                    config.clone().with_redundancy(RedundancyMode::Disabled),
                )
                .run(&program);
                for v in 0..mutated.num_vertices() {
                    assert!(
                        (warm.values[v] - cold_exact.values[v]).abs() < 1e-5,
                        "seed {seed}, {workers} workers, vertex {v}: {} vs exact {}",
                        warm.values[v],
                        cold_exact.values[v]
                    );
                }
                // Delta-restart from a fixpoint converges in far fewer iterations.
                assert!(warm.stats.iterations <= cold_exact.stats.iterations);
            }
        }
    }

    #[test]
    fn warm_start_does_less_work_than_cold_on_small_batches() {
        let g = generators::rmat(4000, 32000, 0.57, 0.19, 0.19, 321);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let program = TestSssp { root };
        let cluster = ClusterConfig::new(2, 1);
        let previous =
            SlfeEngine::build(&g, cluster.clone(), EngineConfig::default()).run(&program);
        // A small insert-only batch: the canonical serving update.
        let mut batch = UpdateBatch::new();
        let mut rng = slfe_graph::rng::SplitMix64::seed_from_u64(7);
        for _ in 0..40 {
            let src = rng.range_u32(0, g.num_vertices() as u32);
            let dst = rng.range_u32(0, g.num_vertices() as u32);
            batch.insert(src, dst, rng.range_f32(5.0, 10.0));
        }
        let (mutated, effect) = g.apply_batch(&batch);
        let dirty = effect.dirty_bitset(mutated.num_vertices());
        let warm_engine = SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default());
        let warm = warm_engine.run_from(&program, &previous, &dirty);
        let cold = SlfeEngine::build(&mutated, cluster, EngineConfig::default()).run(&program);
        assert_eq!(
            warm.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            cold.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        assert!(
            warm.stats.totals.work() * 5 <= cold.stats.totals.work(),
            "warm restart should do >=5x less counted work ({} vs {})",
            warm.stats.totals.work(),
            cold.stats.totals.work()
        );
    }

    #[test]
    fn warm_start_with_empty_dirty_set_is_a_noop_fixpoint() {
        let g = generators::rmat(150, 900, 0.57, 0.19, 0.19, 5);
        let program = TestSssp { root: 0 };
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 2), EngineConfig::default());
        let previous = engine.run(&program);
        let dirty = Bitset::new(g.num_vertices());
        let warm = engine.run_from(&program, &previous, &dirty);
        assert_eq!(
            warm.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            previous
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert!(warm.converged);
        assert_eq!(warm.stats.totals.work(), 0);
    }

    #[test]
    fn with_cluster_and_guidance_reuses_the_given_guidance() {
        let g = generators::rmat(200, 1400, 0.57, 0.19, 0.19, 8);
        let rrg = RrGuidance::generate(&g);
        let cluster = Cluster::build(&g, ClusterConfig::new(2, 1));
        let engine = SlfeEngine::with_cluster_and_guidance(
            &g,
            cluster,
            EngineConfig::default(),
            rrg.clone(),
        );
        assert!(engine.guidance().guidance_eq(&rrg));
        assert_eq!(engine.preprocessing_wall_seconds(), 0.0);
        let result = engine.run(&TestSssp { root: 0 });
        let reference = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default())
            .run(&TestSssp { root: 0 });
        assert_eq!(
            result
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            reference
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    /// Seeded-loop property test for [`SparsePushMap`] growth: entries and
    /// contribution masks must survive every rehash, probe chains must stay
    /// findable right across the 7/8 load boundary, and a destination whose
    /// folded value happens to equal the fold identity must still round-trip
    /// (present-with-identity-value is distinct from absent).
    #[test]
    fn sparse_push_map_growth_preserves_entries_and_masks() {
        let mask_words = 2usize;
        for seed in 0..8u64 {
            let mut rng = slfe_graph::rng::SplitMix64::seed_from_u64(seed * 131 + 17);
            let mut map: SparsePushMap<f32> = SparsePushMap::new(mask_words);
            let mut reference: std::collections::HashMap<u32, (u32, [u64; 2])> =
                std::collections::HashMap::new();
            // Enough inserts to force several rehash generations (64 -> 128 ->
            // 256 -> 512 slots), with duplicate destinations folding via min.
            let inserts = 420 + (seed as usize % 50);
            for i in 0..inserts {
                let dst = rng.range_u32(0, 700);
                // Identity-valued destinations appear deliberately.
                let value = if i % 13 == 0 {
                    f32::INFINITY
                } else {
                    rng.range_f32(0.0, 100.0)
                };
                let mask_bit = rng.range_u32(0, 128) as usize;
                let (slot, fresh) = map.slot_for(dst, f32::INFINITY);
                if fresh {
                    map.values[slot] = value;
                } else {
                    map.values[slot] = map.values[slot].min(value);
                }
                map.masks[slot * mask_words + mask_bit / 64] |= 1u64 << (mask_bit % 64);
                let entry = reference
                    .entry(dst)
                    .or_insert((f32::INFINITY.to_bits(), [0u64; 2]));
                entry.0 = f32::from_bits(entry.0).min(value).to_bits();
                entry.1[mask_bit / 64] |= 1u64 << (mask_bit % 64);
            }
            assert_eq!(map.len, reference.len(), "seed {seed}: live entry count");
            // The table grew across the 7/8 boundary at least once.
            assert!(map.keys.len() >= 512, "seed {seed}: expected several grows");
            assert!(
                map.len * 8 <= map.keys.len() * 7,
                "seed {seed}: load factor above 7/8"
            );
            // Every inserted destination is still findable through the probe
            // chain (slot_for reports it as non-fresh) with its exact folded
            // value and OR-ed mask — identity-valued entries included.
            let mut seen = std::collections::HashMap::new();
            map.for_each(|dst, value, mask| {
                seen.insert(dst, (value.to_bits(), [mask[0], mask[1]]));
            });
            assert_eq!(seen, reference, "seed {seed}: entries diverge after grow");
            for (&dst, &(bits, mask)) in &reference {
                let (slot, fresh) = map.slot_for(dst, f32::INFINITY);
                assert!(!fresh, "seed {seed}: {dst} lost from the probe chain");
                assert_eq!(map.values[slot].to_bits(), bits);
                assert_eq!(map.masks[slot * mask_words], mask[0]);
                assert_eq!(map.masks[slot * mask_words + 1], mask[1]);
            }
        }
    }

    /// Probe-chain integrity exactly at the grow trigger: inserting the entry
    /// that crosses `len + 1 > 7/8 · capacity` rehashes first, and every
    /// pre-existing entry must remain reachable in the doubled table.
    #[test]
    fn sparse_push_map_probe_chains_survive_the_load_boundary() {
        let mut map: SparsePushMap<u64> = SparsePushMap::new(0);
        // Fill the initial 64-slot table to exactly its 7/8 threshold: 56
        // entries fit, the 57th must trigger the grow (the map grows when
        // (len + 1) * 8 > capacity * 7).
        let spread = |i: u32| i * 97 + 5; // non-contiguous keys -> real probing
        let mut i = 0u32;
        while (map.len + 1) * 8 <= map.keys.len().max(64) * 7 {
            let (slot, fresh) = map.slot_for(spread(i), 0);
            assert!(fresh);
            map.values[slot] = u64::from(spread(i)) * 3;
            i += 1;
            if map.keys.len() > 64 {
                break;
            }
        }
        assert_eq!(map.keys.len(), 64, "should still be in the first table");
        let filled = i;
        let (slot, fresh) = map.slot_for(spread(filled), 0);
        assert!(fresh);
        map.values[slot] = u64::from(spread(filled)) * 3;
        assert_eq!(map.keys.len(), 128, "crossing 7/8 load must double");
        for j in 0..=filled {
            let (slot, fresh) = map.slot_for(spread(j), 0);
            assert!(!fresh, "key {} unreachable after the boundary grow", j);
            assert_eq!(map.values[slot], u64::from(spread(j)) * 3);
        }
        // clear() keeps capacity but drops entries; release() drops both.
        map.clear();
        assert_eq!(map.len, 0);
        assert_eq!(map.keys.len(), 128);
        map.release();
        assert_eq!(map.bytes(), 0);
    }

    #[test]
    fn parallel_pull_counters_match_sequential_exactly() {
        // Pull-phase counters are per-destination and therefore identical for any
        // worker count; PageRank never pushes, so its whole run is comparable.
        let g = generators::rmat(250, 2000, 0.57, 0.19, 0.19, 44);
        let program = TestRank {
            damping: 0.85,
            n: g.num_vertices(),
        };
        let a =
            SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default()).run(&program);
        let b =
            SlfeEngine::build(&g, ClusterConfig::new(2, 3), EngineConfig::default()).run(&program);
        assert_eq!(a.stats.totals, b.stats.totals);
    }
}
