//! Wall-clock micro-benchmarks backing Table 5 / Figure 5: the real cost of one
//! full application run per engine on the pokec proxy.
//!
//! The `experiments` binary reproduces the actual tables (it reports the simulated,
//! machine-independent metrics); these benches measure the real wall-clock cost of
//! the engines in this repository so regressions in the implementations themselves
//! are caught. Plain `harness = false` programs — run with `cargo bench`.

use slfe_apps::AppKind;
use slfe_bench::timing::{report, time_best_of};
use slfe_bench::{runner, EngineKind};
use slfe_cluster::ClusterConfig;
use slfe_graph::datasets::Dataset;

fn main() {
    let graph = Dataset::Pokec.load_scaled(16_000);
    let cc_graph = runner::prepare_graph(AppKind::ConnectedComponents, &graph);
    let cluster = ClusterConfig::new(8, 4);
    let runs = 5;

    println!("== table5_sssp_pokec ==");
    for engine in [
        EngineKind::Slfe,
        EngineKind::Gemini,
        EngineKind::PowerLyra,
        EngineKind::PowerGraph,
    ] {
        let sample = time_best_of(runs, || {
            runner::run_app(engine, AppKind::Sssp, &graph, cluster.clone())
        });
        report(engine.name(), sample);
    }

    println!("== fig5_pagerank_pokec ==");
    for engine in [EngineKind::Slfe, EngineKind::SlfeNoRr, EngineKind::Gemini] {
        let sample = time_best_of(runs, || {
            runner::run_app(engine, AppKind::PageRank, &graph, cluster.clone())
        });
        report(engine.name(), sample);
    }

    println!("== table5_cc_pokec ==");
    for engine in [EngineKind::Slfe, EngineKind::Gemini, EngineKind::PowerLyra] {
        let sample = time_best_of(runs, || {
            runner::run_app(
                engine,
                AppKind::ConnectedComponents,
                &cc_graph,
                cluster.clone(),
            )
        });
        report(engine.name(), sample);
    }
}
