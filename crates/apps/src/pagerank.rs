//! PageRank (paper Algorithm 5).
//!
//! As in the paper's pseudo-code, the stored vertex property is the *outgoing rank
//! share* — `rank(v) / out_degree(v)` for vertices with outgoing edges, `rank(v)`
//! otherwise — so that an edge contribution is simply the source's stored value.
//! The `vertex_update` hook applies the damping (`0.15 + 0.85 * sum`) and the
//! division, exactly like Algorithm 5's `vOp`. [`ranks`] converts the stored shares
//! back into conventional ranks.
//!
//! PageRank is the canonical "finish early" beneficiary: the vast majority of
//! vertices stabilise long before global convergence (Figure 2), and the multi
//! ruler stops recomputing them.

use slfe_core::{AggregationKind, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{Degrees, EdgeWeight, Graph, VertexId};

/// Default damping factor used by the paper (0.85).
pub const DEFAULT_DAMPING: f32 = 0.85;

/// PageRank as a [`GraphProgram`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankProgram {
    /// Damping factor (probability of following a link).
    pub damping: f32,
    /// Number of vertices (used for the teleport term).
    pub num_vertices: usize,
}

impl PageRankProgram {
    /// PageRank with the default damping for a graph of `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            damping: DEFAULT_DAMPING,
            num_vertices,
        }
    }

    /// PageRank sized for `graph` — the program-factory form used by the
    /// incremental serving loop, where `|V|` (the teleport denominator) must
    /// track the current graph version.
    pub fn for_graph(graph: &Graph) -> Self {
        Self::new(graph.num_vertices())
    }
}

impl GraphProgram for PageRankProgram {
    type Value = f32;

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::Arithmetic
    }

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn initial_value(&self, v: VertexId, degrees: &Degrees) -> f32 {
        // Start from the uniform distribution, already expressed as a share.
        let rank = 1.0 / self.num_vertices.max(1) as f32;
        let out = degrees.out_degree(v);
        if out > 0 {
            rank / out as f32
        } else {
            rank
        }
    }

    fn initial_active(&self, _v: VertexId, _degrees: &Degrees) -> bool {
        true
    }

    fn identity(&self) -> f32 {
        0.0
    }

    fn edge_contribution(
        &self,
        _src: VertexId,
        src_value: f32,
        _weight: EdgeWeight,
    ) -> Option<f32> {
        Some(src_value)
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, _dst: VertexId, _old: f32, gathered: f32) -> f32 {
        gathered
    }

    fn vertex_update(&self, v: VertexId, value: f32, degrees: &Degrees) -> f32 {
        let rank = (1.0 - self.damping) / self.num_vertices.max(1) as f32 + self.damping * value;
        let out = degrees.out_degree(v);
        if out > 0 {
            rank / out as f32
        } else {
            rank
        }
    }

    fn changed(&self, old: f32, new: f32, tolerance: f64) -> bool {
        (old - new).abs() as f64 > tolerance
    }
}

/// Run PageRank on an engine; the result's `values` are the stored *shares*
/// (use [`ranks`] to convert).
pub fn run(engine: &SlfeEngine<'_>) -> ProgramResult<f32> {
    let program = PageRankProgram::new(engine.graph().num_vertices());
    engine.run(&program)
}

/// Convert the stored shares of a PageRank result back into per-vertex ranks.
pub fn ranks(graph: &Graph, shares: &[f32]) -> Vec<f32> {
    graph
        .vertices()
        .map(|v| {
            let out = graph.out_degree(v);
            if out > 0 {
                shares[v as usize] * out as f32
            } else {
                shares[v as usize]
            }
        })
        .collect()
}

/// Sequential power-iteration reference returning conventional ranks. Iterates
/// until the maximum per-vertex change drops below `tolerance` (or `max_iters`).
pub fn reference(graph: &Graph, damping: f32, tolerance: f32, max_iters: u32) -> Vec<f32> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f32; n];
    for _ in 0..max_iters {
        let shares: Vec<f32> = graph
            .vertices()
            .map(|v| {
                let out = graph.out_degree(v);
                if out > 0 {
                    rank[v as usize] / out as f32
                } else {
                    rank[v as usize]
                }
            })
            .collect();
        let mut max_delta = 0.0f32;
        let mut next = vec![0.0f32; n];
        for v in graph.vertices() {
            let sum: f32 = graph
                .in_neighbors(v)
                .iter()
                .map(|&u| shares[u as usize])
                .sum();
            let new = (1.0 - damping) / n as f32 + damping * sum;
            max_delta = max_delta.max((new - rank[v as usize]).abs());
            next[v as usize] = new;
        }
        rank = next;
        if max_delta < tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_cluster::ClusterConfig;
    use slfe_core::EngineConfig;
    use slfe_graph::{datasets::Dataset, generators};

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn matches_power_iteration_on_rmat() {
        let g = Dataset::Pokec.load_scaled(32_000);
        let expected = reference(&g, DEFAULT_DAMPING, 1e-7, 200);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default());
        let result = run(&engine);
        let got = ranks(&g, &result.values);
        assert!(
            max_abs_diff(&got, &expected) < 1e-3,
            "PageRank diverges from power iteration by {}",
            max_abs_diff(&got, &expected)
        );
    }

    #[test]
    fn rr_and_non_rr_agree_and_rr_does_not_do_more_work() {
        let g = Dataset::Orkut.load_scaled(64_000);
        let rr = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default());
        let no_rr = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::without_rr());
        let a = run(&rr);
        let b = run(&no_rr);
        let ranks_a = ranks(&g, &a.values);
        let ranks_b = ranks(&g, &b.values);
        assert!(max_abs_diff(&ranks_a, &ranks_b) < 1e-3);
        assert!(
            a.stats.totals.work() <= b.stats.totals.work(),
            "finish-early should not add work: {} vs {}",
            a.stats.totals.work(),
            b.stats.totals.work()
        );
    }

    #[test]
    fn ranks_sum_to_approximately_one_on_a_sink_free_graph() {
        let g = generators::cycle(50);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default());
        let result = run(&engine);
        let total: f32 = ranks(&g, &result.values).iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "rank mass {total} drifted");
    }

    #[test]
    fn hub_of_a_star_collects_no_rank_but_leaves_do() {
        // Star edges point hub -> leaves, so leaves receive rank from the hub.
        let g = generators::star(10);
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine);
        let r = ranks(&g, &result.values);
        // Every leaf has the same rank, larger than the teleport-only hub rank.
        for leaf in 1..11 {
            assert!((r[leaf] - r[1]).abs() < 1e-6);
            assert!(r[leaf] > r[0] * 0.9);
        }
    }

    #[test]
    fn most_vertices_converge_early_on_skewed_graphs() {
        // Figure 2's premise: a large share of vertices are early-converged.
        let g = Dataset::Delicious.load_scaled(64_000);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::without_rr());
        let result = run(&engine);
        let ec = result.early_converged_fraction(0.9);
        assert!(
            ec > 0.5,
            "expected most vertices to be early-converged, got {ec}"
        );
    }

    #[test]
    fn reference_handles_empty_graph() {
        let g = slfe_graph::Graph::from_edges(0, vec![]);
        assert!(reference(&g, DEFAULT_DAMPING, 1e-6, 10).is_empty());
    }
}
