/root/repo/target/release/deps/slfe_cluster-90593dc2661f7fa3.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

/root/repo/target/release/deps/libslfe_cluster-90593dc2661f7fa3.rlib: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

/root/repo/target/release/deps/libslfe_cluster-90593dc2661f7fa3.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/config.rs:
crates/cluster/src/stealing.rs:
