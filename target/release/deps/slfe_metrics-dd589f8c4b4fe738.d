/root/repo/target/release/deps/slfe_metrics-dd589f8c4b4fe738.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

/root/repo/target/release/deps/libslfe_metrics-dd589f8c4b4fe738.rlib: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

/root/repo/target/release/deps/libslfe_metrics-dd589f8c4b4fe738.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/imbalance.rs:
crates/metrics/src/report.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/trace.rs:
