//! Id-remap transparency acceptance tests (PR 10): physical reordering must
//! be invisible to every consumer of external vertex ids.
//!
//! The contract pinned here: for **every registered application**
//! ([`slfe::apps::AppKind::ALL`]), a run on a physically remapped graph is
//! **bit-identical** — values (compared in external-id order), convergence
//! and iteration count — to the run on the unremapped graph, at 1 and 4
//! workers, in-memory and out-of-core. At the serving layer, warm batches
//! stay bit-transparent *across* a remap boundary, a kill-9'd remapped
//! durable server recovers bit-identically, and migration bounds the
//! partition imbalance that growth alone cannot fix.
//!
//! Counters that are *documented* as layout-dependent and therefore excluded
//! from the equality: edge computations and chunks skipped (chunk boundaries
//! move with the physical order), per-worker message tallies and simulated
//! seconds (derived from the above), scratch-space peaks, and the out-of-core
//! I/O stats `segments_faulted` / `segment_bytes_read` (the locality bench
//! exists to show those *improve* under a degree-ordered remap).
//!
//! Run with `--test-threads=1`: every case spawns its own worker pool and
//! the CI container has a single hardware thread.

use slfe::apps::{bfs, cc, heat, numpaths, pagerank, spmv, sssp, tunkrank, widestpath, AppKind};
use slfe::core::{EngineConfig, GraphProgram, RedundancyMode, SlfeEngine};
use slfe::delta::{DeltaServer, DurabilityConfig, ServerConfig};
use slfe::graph::rng::SplitMix64;
use slfe::graph::{generators, stats, Graph, IdRemap, ReorderPolicy, UpdateBatch, VertexId};
use slfe::prelude::ClusterConfig;

/// A seeded random permutation of `0..n` (Fisher–Yates over SplitMix64) —
/// the adversarial layout: no locality structure whatsoever.
fn random_permutation(n: usize, seed: u64) -> IdRemap {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = rng.range_u32(0, i as u32 + 1) as usize;
        perm.swap(i, j);
    }
    IdRemap::from_forward(perm)
}

/// Reindex an engine result (physical order) into external-id order.
fn external_order<T: Copy>(graph: &Graph, values: &[T]) -> Vec<T> {
    (0..values.len())
        .map(|ext| values[graph.to_physical(ext as VertexId) as usize])
        .collect()
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Run `make_program` on `graph` and on a randomly permuted copy, across
/// {1, 4} workers × {in-memory, out-of-core}, and require the remapped run to
/// be bit-identical in external order, convergence and iteration count.
fn check_remap_transparent<P, V, PF, C>(
    graph: &Graph,
    config: EngineConfig,
    seed: u64,
    make_program: PF,
    compare: C,
) where
    P: GraphProgram<Value = V>,
    V: Copy + PartialEq + Send + Sync + std::fmt::Debug,
    PF: Fn(&Graph) -> P,
    C: Fn(&[V], &[V], &str),
{
    let step = random_permutation(graph.num_vertices(), seed);
    assert!(!step.is_identity(), "the test needs a real permutation");
    let remapped = graph.remapped(&step);
    remapped.validate().unwrap();
    for workers in [1usize, 4] {
        for oocore in [false, true] {
            let config = if oocore {
                config
                    .clone()
                    .with_storage_budget(24 << 10)
                    .with_storage_segment_bytes(2 << 10)
            } else {
                config.clone()
            };
            let cluster = ClusterConfig::new(2, workers);
            let plain =
                SlfeEngine::build(graph, cluster.clone(), config.clone()).run(&make_program(graph));
            let permuted =
                SlfeEngine::build(&remapped, cluster, config).run(&make_program(&remapped));
            let label = format!("{workers} workers, oocore={oocore}");
            assert_eq!(
                plain.converged, permuted.converged,
                "{label}: convergence must not depend on the layout"
            );
            assert_eq!(
                plain.stats.iterations, permuted.stats.iterations,
                "{label}: iteration count must not depend on the layout"
            );
            compare(
                &plain.values,
                &external_order(&remapped, &permuted.values),
                &label,
            );
        }
    }
}

fn assert_bits_equal(plain: &[f32], remapped: &[f32], app: AppKind, label: &str) {
    assert_eq!(plain.len(), remapped.len());
    for (v, (a, b)) in plain.iter().zip(remapped).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{app}: external vertex {v} diverges under remap ({label}): {a} vs {b}"
        );
    }
}

/// Ruler-free arithmetic configuration (matches `tests/incremental.rs`).
fn exact_config() -> EngineConfig {
    EngineConfig::default()
        .with_redundancy(RedundancyMode::Disabled)
        .with_max_iterations(400)
}

/// The tentpole invariant: every registered application is value-transparent
/// under an adversarial random permutation — with redundancy reduction *on*
/// for the min/max apps (guidance generation is permutation-equivariant) and
/// ruler-free for the arithmetic ones (their served configuration).
#[test]
fn every_registered_program_is_bit_transparent_under_remap() {
    let rmat = generators::rmat(260, 1700, 0.57, 0.19, 0.19, 900);
    let sym = cc::symmetrize(&generators::rmat(200, 900, 0.57, 0.19, 0.19, 950));
    let dag = generators::layered(8, 30, 4, 77);
    let root = stats::highest_out_degree_vertex(&rmat).unwrap();

    for app in AppKind::ALL {
        eprintln!("checking {app} under remap");
        let seed = 4200 + app as u64;
        match app {
            AppKind::Sssp => check_remap_transparent(
                &rmat,
                EngineConfig::default(),
                seed,
                |g: &Graph| sssp::SsspProgram {
                    root: g.to_physical(root),
                },
                |p, r, l| assert_bits_equal(p, r, app, l),
            ),
            AppKind::Bfs => check_remap_transparent(
                &rmat,
                EngineConfig::default(),
                seed,
                |g: &Graph| bfs::BfsProgram {
                    root: g.to_physical(root),
                },
                |p, r, l| assert_bits_equal(p, r, app, l),
            ),
            AppKind::WidestPath => check_remap_transparent(
                &rmat,
                EngineConfig::default(),
                seed,
                |g: &Graph| widestpath::WidestPathProgram {
                    root: g.to_physical(root),
                },
                |p, r, l| assert_bits_equal(p, r, app, l),
            ),
            AppKind::ConnectedComponents => check_remap_transparent(
                &sym,
                EngineConfig::default(),
                seed,
                cc::CcProgram::for_graph,
                |p: &[f32], r: &[f32], l| assert_bits_equal(p, r, app, l),
            ),
            AppKind::PageRank => check_remap_transparent(
                &rmat,
                exact_config(),
                seed,
                pagerank::PageRankProgram::for_graph,
                |p, r, l| assert_bits_equal(p, r, app, l),
            ),
            AppKind::TunkRank => check_remap_transparent(
                &rmat,
                exact_config(),
                seed,
                |_| tunkrank::TunkRankProgram::default(),
                |p, r, l| assert_bits_equal(p, r, app, l),
            ),
            AppKind::SpMV => check_remap_transparent(
                &rmat,
                exact_config(),
                seed,
                |g: &Graph| spmv::SpmvProgram::ones(g.num_vertices()),
                |p: &[(f32, f32)], r: &[(f32, f32)], l| {
                    for (v, (a, b)) in p.iter().zip(r).enumerate() {
                        assert_eq!(
                            (a.0.to_bits(), a.1.to_bits()),
                            (b.0.to_bits(), b.1.to_bits()),
                            "SpMV: external vertex {v} diverges under remap ({l})"
                        );
                    }
                },
            ),
            AppKind::HeatSimulation => check_remap_transparent(
                &rmat,
                exact_config()
                    .with_tolerance(1e-6)
                    .with_max_iterations(3000),
                seed,
                |g: &Graph| heat::HeatProgram::point_source(g, g.to_physical(root)),
                |p, r, l| assert_bits_equal(p, r, app, l),
            ),
            AppKind::NumPaths => check_remap_transparent(
                &dag,
                exact_config(),
                seed,
                |g: &Graph| numpaths::NumPathsProgram {
                    root: g.to_physical(0),
                },
                |p, r, l| assert_bits_equal(p, r, app, l),
            ),
        }
    }
}

/// Mixed random batch in **external** ids, optionally growing the id space —
/// the same stream is fed to a remapped and an unremapped server.
fn mixed_batch(n: u32, seed: u64, ops: usize, grow: u32) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let src = rng.range_u32(0, n);
        if rng.next_f64() < 0.75 {
            batch.insert(src, rng.range_u32(0, n + grow), rng.range_f32(1.0, 10.0));
        } else {
            batch.delete(src, rng.range_u32(0, n));
        }
    }
    batch
}

/// Warm serving across a remap boundary: a policy server (degree-descending
/// reorder + migration) must answer every query — full values, point reads,
/// top-k — bit-identically to a policy-free reference, before and after
/// [`DeltaServer::remap_now`], including warm batches applied *after* the
/// boundary and growth batches whose appended ids sit beyond the remap.
#[test]
fn warm_batches_stay_bit_transparent_across_a_remap_boundary() {
    let graph = generators::rmat(500, 3500, 0.57, 0.19, 0.19, 1011);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |g: &Graph| sssp::SsspProgram {
        root: g.to_physical(root),
    };
    let policy = ServerConfig {
        cluster: ClusterConfig::new(4, 1),
        engine: EngineConfig::default()
            .with_reorder(ReorderPolicy::DegreeDescending)
            .with_migration_imbalance_threshold(1.5),
        ..ServerConfig::default()
    };
    let reference_config = ServerConfig {
        cluster: ClusterConfig::new(4, 1),
        ..ServerConfig::default()
    };
    let mut server = DeltaServer::new(graph.clone(), make, policy);
    let mut reference = DeltaServer::new(graph, make, reference_config);
    let mut n = server.graph().num_vertices() as u32;
    for round in 0..6u64 {
        let batch = mixed_batch(n, round + 300, 20, if round % 2 == 0 { 4 } else { 0 });
        let outcome = server.apply(&batch);
        let expected = reference.apply(&batch);
        assert!(!outcome.full_recompute, "round {round} must stay warm");
        assert_eq!(
            outcome.effect.dirty, expected.effect.dirty,
            "round {round}: BatchOutcome must report external dirty ids"
        );
        assert_eq!(
            outcome.effect.worsened_dsts, expected.effect.worsened_dsts,
            "round {round}: BatchOutcome must report external worsened ids"
        );
        assert_eq!(
            bits(server.values()),
            bits(reference.values()),
            "round {round}: values diverge"
        );
        n = server.graph().num_vertices() as u32;
        if round == 2 {
            // The remap boundary, mid-stream.
            assert!(server.remap_now().unwrap(), "policy must produce a remap");
            assert!(server.graph().is_remapped());
            assert!(!reference.graph().is_remapped());
            assert_eq!(
                bits(server.values()),
                bits(reference.values()),
                "the remap itself perturbed served values"
            );
        }
    }
    // Query-surface equality on the final (remapped, grown) version.
    assert_eq!(bits(server.values()), bits(reference.values()));
    for v in (0..n).step_by(37) {
        assert_eq!(server.value(v), reference.value(v), "point query at {v}");
    }
    assert_eq!(server.value(n + 999), None);
    let near = |a: &f32, b: &f32| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal);
    assert_eq!(
        server.top_k_by(12, near),
        reference.top_k_by(12, near),
        "top-k must rank external ids identically"
    );
}

/// Out-of-core remap: [`DeltaServer::remap_now`] re-encodes the disk segments
/// in the new physical order, and the re-encoded store serves bit-identical
/// values through subsequent warm batches.
#[test]
fn out_of_core_remap_reencodes_segments_and_stays_transparent() {
    let graph = generators::rmat(600, 4200, 0.57, 0.19, 0.19, 1213);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |g: &Graph| sssp::SsspProgram {
        root: g.to_physical(root),
    };
    let oocore_policy = ServerConfig {
        engine: EngineConfig::default()
            .with_storage_budget(24 << 10)
            .with_storage_segment_bytes(2 << 10)
            .with_reorder(ReorderPolicy::DegreeDescending),
        ..ServerConfig::default()
    };
    let mut server = DeltaServer::new(graph.clone(), make, oocore_policy);
    let mut reference = DeltaServer::new(graph, make, ServerConfig::default());
    let mut n = server.graph().num_vertices() as u32;
    for round in 0..4u64 {
        let batch = mixed_batch(n, round + 800, 15, 0);
        server.apply(&batch);
        reference.apply(&batch);
        n = server.graph().num_vertices() as u32;
        if round == 1 {
            let live_before = server.storage().unwrap().footprint_bytes();
            assert!(server.remap_now().unwrap());
            assert!(server.graph().is_remapped());
            let storage = server.storage().expect("remap must keep the store");
            assert!(
                storage.footprint_bytes() > 0 && live_before > 0,
                "re-encoded store must have live bytes"
            );
            // The fresh generation has no superseded segments.
            assert_eq!(storage.dead_bytes(), 0);
        }
        assert_eq!(
            bits(server.values()),
            bits(reference.values()),
            "round {round}: out-of-core remapped serving diverges"
        );
    }
}

fn durable_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("slfe-remap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kill-9 recovery of a remapped server: the snapshot-path policy remaps the
/// layout mid-stream, further external-id batches land in the WAL only, the
/// process dies without a clean shutdown, and `open` must restore the remap
/// from the snapshot, re-translate the WAL suffix through it, and serve
/// bit-identical values to an uninterrupted policy-free witness.
#[test]
fn kill9_reopen_of_a_remapped_durable_server_is_bit_identical() {
    let dir = durable_dir("kill9");
    let graph = generators::rmat(400, 2800, 0.57, 0.19, 0.19, 1415);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |g: &Graph| sssp::SsspProgram {
        root: g.to_physical(root),
    };
    let policy = ServerConfig {
        engine: EngineConfig::default()
            .with_reorder(ReorderPolicy::DegreeDescending)
            .with_migration_imbalance_threshold(1.5),
        ..ServerConfig::default()
    };
    let durability = DurabilityConfig::new(&dir).with_snapshot_every(3);
    let mut durable =
        DeltaServer::create_durable(graph.clone(), make, policy.clone(), durability.clone())
            .unwrap();
    // The initial snapshot already ran the policy: the layout is remapped
    // before the first batch arrives.
    assert!(durable.graph().is_remapped());
    let mut witness = DeltaServer::new(graph, make, ServerConfig::default());
    let mut n = durable.graph().num_vertices() as u32;
    for round in 0..5u64 {
        let batch = mixed_batch(n, round + 5000, 18, if round == 1 { 5 } else { 0 });
        durable.apply(&batch);
        witness.apply(&batch);
        n = durable.graph().num_vertices() as u32;
    }
    // Snapshot (and re-remap) at seq 3; entries 4 and 5 only in the WAL.
    assert_eq!(durable.wal_seq(), Some(5));
    drop(durable); // kill -9: no flush, no final snapshot

    let reopened = DeltaServer::open(make, policy, durability).unwrap();
    assert!(
        reopened.graph().is_remapped(),
        "the snapshot must restore the remap"
    );
    assert_eq!(
        reopened.durability_counters().unwrap().wal_entries_replayed,
        2,
        "the two post-snapshot batches must replay"
    );
    assert_eq!(
        bits(reopened.values()),
        bits(witness.values()),
        "recovered remapped values diverge from the uninterrupted witness"
    );
    let near = |a: &f32, b: &f32| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal);
    assert_eq!(reopened.top_k_by(10, near), witness.top_k_by(10, near));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Migration bounds the partition imbalance growth alone cannot fix: the
/// edge-balanced seed partitioning starts vertex-skewed on a hub-heavy
/// graph, `extend_to`'s least-loaded appends cannot undo that head start
/// over a 50-batch growth run, but the migration policy pulls the ratio
/// under its threshold — without perturbing a single served bit.
#[test]
fn migration_bounds_imbalance_that_growth_alone_cannot_fix() {
    let graph = generators::rmat(2000, 16_000, 0.57, 0.19, 0.19, 1617);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |g: &Graph| sssp::SsspProgram {
        root: g.to_physical(root),
    };
    let cluster = ClusterConfig::new(4, 1);
    let threshold = 1.10;
    let policy = ServerConfig {
        cluster: cluster.clone(),
        engine: EngineConfig::default().with_migration_imbalance_threshold(threshold),
        ..ServerConfig::default()
    };
    let reference_config = ServerConfig {
        cluster,
        ..ServerConfig::default()
    };
    let mut server = DeltaServer::new(graph.clone(), make, policy);
    let mut reference = DeltaServer::new(graph, make, reference_config);
    assert!(
        reference.partitioning().imbalance() > threshold,
        "seed partitioning must start vertex-skewed (got {})",
        reference.partitioning().imbalance()
    );
    let mut n = server.graph().num_vertices() as u32;
    let mut last = (0.0, 0.0);
    for round in 0..50u64 {
        // Growth-heavy: two appended vertices per batch plus a few edits.
        let mut batch = mixed_batch(n, round + 9000, 4, 0);
        batch.insert(root, n, 2.0).insert(n, n + 1, 3.0);
        let outcome = server.apply(&batch);
        let expected = reference.apply(&batch);
        server.remap_now().unwrap();
        assert_eq!(
            bits(server.values()),
            bits(reference.values()),
            "round {round}: migration/remap perturbed served values"
        );
        n = server.graph().num_vertices() as u32;
        last = (outcome.partition_imbalance, expected.partition_imbalance);
    }
    // The reference is still skewed after 100 appended vertices...
    assert!(
        last.1 > threshold,
        "growth alone was enough to rebalance (reference at {}) — the run no longer \
         exercises migration",
        last.1
    );
    // ...while the migrated layout sits at the threshold.
    assert!(
        server.partitioning().imbalance() <= threshold,
        "migration left imbalance at {}",
        server.partitioning().imbalance()
    );
    assert!(server.graph().is_remapped());
    // The registry surfaces the same ratio as a gauge.
    let reg = server.metrics_registry();
    let gauge = reg.get("slfe_partition_imbalance").unwrap().value;
    assert!((gauge - server.partitioning().imbalance()).abs() < 1e-12);
    assert!(
        reference
            .metrics_registry()
            .get("slfe_partition_imbalance")
            .unwrap()
            .value
            > threshold
    );
}
