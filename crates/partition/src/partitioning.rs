//! The result of partitioning: a vertex → node assignment with lookup helpers.

use slfe_graph::{Graph, VertexId};

/// Identifier of a logical cluster node (partition owner).
pub type NodeId = usize;

/// An assignment of every vertex to one of `num_parts` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    owner: Vec<NodeId>,
    parts: Vec<Vec<VertexId>>,
}

impl Partitioning {
    /// Build a partitioning from an explicit owner array.
    ///
    /// Panics if any owner id is `>= num_parts`.
    pub fn from_owners(owner: Vec<NodeId>, num_parts: usize) -> Self {
        assert!(num_parts >= 1, "need at least one partition");
        let mut parts = vec![Vec::new(); num_parts];
        for (v, &o) in owner.iter().enumerate() {
            assert!(
                o < num_parts,
                "owner {o} of vertex {v} out of range ({num_parts} parts)"
            );
            parts[o].push(v as VertexId);
        }
        Self { owner, parts }
    }

    /// Number of partitions (some may be empty).
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Number of vertices assigned.
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The node that owns vertex `v`.
    pub fn owner_of(&self, v: VertexId) -> NodeId {
        self.owner[v as usize]
    }

    /// The vertices owned by `node`, in ascending id order.
    pub fn vertices_of(&self, node: NodeId) -> &[VertexId] {
        &self.parts[node]
    }

    /// Whole owner array (indexed by vertex id).
    pub fn owners(&self) -> &[NodeId] {
        &self.owner
    }

    /// Number of vertices owned by each node.
    pub fn vertex_counts(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.len()).collect()
    }

    /// Grow the id space to `new_num_vertices`, assigning every appended vertex
    /// to `node`. The vertex-id space only ever grows across
    /// [`slfe_graph::Graph::apply_batch`], so a serving loop can keep one
    /// partitioning stable across graph versions — the prerequisite for
    /// patching the chunk layout instead of re-deriving it — by extending it
    /// per batch instead of re-partitioning. Appended ids exceed all existing
    /// ones, so each node's vertex list stays ascending.
    pub fn extend_to(&mut self, new_num_vertices: usize, node: NodeId) {
        assert!(node < self.parts.len(), "target node out of range");
        assert!(
            new_num_vertices >= self.owner.len(),
            "the id space only grows"
        );
        for v in self.owner.len()..new_num_vertices {
            self.owner.push(node);
            self.parts[node].push(v as VertexId);
        }
    }

    /// Number of *outgoing* edges whose source is owned by each node — the measure
    /// Gemini-style chunking balances on.
    pub fn edge_counts(&self, graph: &Graph) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_parts()];
        for v in graph.vertices() {
            counts[self.owner_of(v)] += graph.out_degree(v);
        }
        counts
    }

    /// Number of edges crossing partition boundaries (src and dst owned by different
    /// nodes). Every such edge becomes an inter-node message in the push model.
    pub fn cut_edges(&self, graph: &Graph) -> usize {
        let mut cut = 0usize;
        for v in graph.vertices() {
            let o = self.owner_of(v);
            for &u in graph.out_neighbors(v) {
                if self.owner_of(u) != o {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Check that every vertex of `graph` is assigned to exactly one existing part.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        if self.owner.len() != graph.num_vertices() {
            return Err(format!(
                "owner array covers {} vertices but graph has {}",
                self.owner.len(),
                graph.num_vertices()
            ));
        }
        let total: usize = self.parts.iter().map(|p| p.len()).sum();
        if total != graph.num_vertices() {
            return Err(format!(
                "parts hold {total} vertices but graph has {}",
                graph.num_vertices()
            ));
        }
        for (node, part) in self.parts.iter().enumerate() {
            for &v in part {
                if self.owner[v as usize] != node {
                    return Err(format!(
                        "vertex {v} listed under node {node} but owned by {}",
                        self.owner[v as usize]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::generators;

    #[test]
    fn from_owners_builds_consistent_parts() {
        let p = Partitioning::from_owners(vec![0, 1, 0, 1, 2], 3);
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.num_vertices(), 5);
        assert_eq!(p.vertices_of(0), &[0, 2]);
        assert_eq!(p.vertices_of(1), &[1, 3]);
        assert_eq!(p.vertices_of(2), &[4]);
        assert_eq!(p.owner_of(3), 1);
        assert_eq!(p.vertex_counts(), vec![2, 2, 1]);
    }

    #[test]
    fn extend_to_appends_to_the_chosen_node_and_stays_valid() {
        let mut p = Partitioning::from_owners(vec![0, 1, 0, 1], 2);
        p.extend_to(7, 1);
        assert_eq!(p.num_vertices(), 7);
        assert_eq!(p.vertices_of(1), &[1, 3, 4, 5, 6]);
        assert!(p.vertices_of(1).windows(2).all(|w| w[0] < w[1]));
        assert_eq!(p.owner_of(6), 1);
        let g = generators::path(7);
        p.validate(&g).unwrap();
        // Extending to the current size is a no-op.
        p.extend_to(7, 0);
        assert_eq!(p.num_vertices(), 7);
    }

    #[test]
    #[should_panic(expected = "only grows")]
    fn extend_to_rejects_shrinking() {
        let mut p = Partitioning::from_owners(vec![0, 0], 1);
        p.extend_to(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_owner_panics() {
        Partitioning::from_owners(vec![0, 5], 2);
    }

    #[test]
    fn edge_counts_and_cut_edges() {
        // path 0->1->2->3 split in half: one cut edge (1->2).
        let g = generators::path(4);
        let p = Partitioning::from_owners(vec![0, 0, 1, 1], 2);
        assert_eq!(p.edge_counts(&g), vec![2, 1]);
        assert_eq!(p.cut_edges(&g), 1);
        p.validate(&g).unwrap();
    }

    #[test]
    fn validate_detects_size_mismatch() {
        let g = generators::path(4);
        let p = Partitioning::from_owners(vec![0, 0, 1], 2);
        assert!(p.validate(&g).is_err());
    }

    #[test]
    fn single_part_owns_everything_with_no_cut() {
        let g = generators::rmat(64, 256, 0.57, 0.19, 0.19, 1);
        let p = Partitioning::from_owners(vec![0; 64], 1);
        assert_eq!(p.cut_edges(&g), 0);
        assert_eq!(p.edge_counts(&g)[0], g.num_edges());
    }

    #[test]
    fn empty_parts_are_allowed() {
        let p = Partitioning::from_owners(vec![0, 0], 4);
        assert_eq!(p.vertex_counts(), vec![2, 0, 0, 0]);
        assert!(p.vertices_of(3).is_empty());
    }
}
