//! Connected Components via min-label propagation.
//!
//! Every vertex starts with its own id as its label; labels propagate along edges
//! and each vertex keeps the minimum it has seen. On a *symmetrised* graph the fixed
//! point assigns every vertex the smallest vertex id of its (weakly) connected
//! component, which is the semantics the paper's CC application uses.
//! [`symmetrize`] produces the required bidirectional graph from a directed input.

use std::sync::Arc;

use slfe_core::{AggregationKind, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{Degrees, EdgeWeight, Graph, GraphBuilder, IdRemap, VertexId};

/// Connected Components as a [`GraphProgram`]; the vertex property is the smallest
/// vertex id seen so far (stored as `f32`, exact for ids below 2^24).
#[derive(Debug, Clone, Default)]
pub struct CcProgram {
    /// External label per physical vertex, captured from a remapped graph's
    /// id-remap. `None` labels every vertex with its own physical id, which
    /// is only correct on an unremapped layout.
    labels: Option<Arc<IdRemap>>,
}

impl CcProgram {
    /// CC labelled with the graph's **external** vertex ids.
    ///
    /// CC is the one registered application whose values are vertex *names*:
    /// on a physically remapped graph the component label must stay the
    /// smallest external id, not the smallest array index, or remapping
    /// would change served answers. Program factories should construct CC
    /// through this — on an unremapped graph it behaves exactly like
    /// [`CcProgram::default`].
    pub fn for_graph(graph: &Graph) -> Self {
        Self {
            labels: graph.remap_arc(),
        }
    }
}

impl GraphProgram for CcProgram {
    type Value = f32;

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::MinMax
    }

    fn name(&self) -> &'static str {
        "cc"
    }

    fn initial_value(&self, v: VertexId, _degrees: &Degrees) -> f32 {
        match &self.labels {
            Some(remap) => remap.to_old(v) as f32,
            None => v as f32,
        }
    }

    fn initial_active(&self, _v: VertexId, _degrees: &Degrees) -> bool {
        true
    }

    fn identity(&self) -> f32 {
        f32::INFINITY
    }

    fn edge_contribution(
        &self,
        _src: VertexId,
        src_value: f32,
        _weight: EdgeWeight,
    ) -> Option<f32> {
        Some(src_value)
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    fn apply(&self, _dst: VertexId, old: f32, gathered: f32) -> f32 {
        old.min(gathered)
    }
}

/// Build the symmetrised (undirected-as-directed) version of `graph`, which CC
/// requires for weakly-connected-component semantics.
pub fn symmetrize(graph: &Graph) -> Graph {
    let mut builder = GraphBuilder::new()
        .with_vertices(graph.num_vertices())
        .symmetric(true)
        .deduplicate(true);
    for e in graph.edges() {
        builder.add_edge(e.src, e.dst, e.weight);
    }
    builder.build()
}

/// Run CC on an engine whose graph is already symmetric; values are component
/// labels (the smallest external vertex id of each component).
pub fn run(engine: &SlfeEngine<'_>) -> ProgramResult<f32> {
    engine.run(&CcProgram::for_graph(engine.graph()))
}

/// Union-find reference: component label = smallest vertex id in the component,
/// treating every edge as undirected.
pub fn reference(graph: &Graph) -> Vec<f32> {
    let n = graph.num_vertices();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        // Path compression.
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }

    for e in graph.edges() {
        let a = find(&mut parent, e.src as usize);
        let b = find(&mut parent, e.dst as usize);
        if a != b {
            // Union by smaller root id so the representative is the minimum.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            parent[hi] = lo;
        }
    }
    (0..n).map(|v| find(&mut parent, v) as f32).collect()
}

/// Number of distinct components in a label assignment.
pub fn component_count(labels: &[f32]) -> usize {
    let mut seen: Vec<f32> = labels.to_vec();
    seen.sort_by(f32::total_cmp);
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_cluster::ClusterConfig;
    use slfe_core::EngineConfig;
    use slfe_graph::{datasets::Dataset, generators};

    fn run_both(graph: &Graph) -> (Vec<f32>, Vec<f32>) {
        let rr = SlfeEngine::build(graph, ClusterConfig::new(4, 2), EngineConfig::default());
        let no_rr = SlfeEngine::build(graph, ClusterConfig::new(4, 2), EngineConfig::without_rr());
        (run(&rr).values, run(&no_rr).values)
    }

    #[test]
    fn matches_union_find_on_symmetrized_rmat() {
        let g = symmetrize(&Dataset::STwitter.load_scaled(20_000));
        let expected = reference(&g);
        let (with_rr, without_rr) = run_both(&g);
        assert_eq!(with_rr, expected);
        assert_eq!(without_rr, expected);
    }

    #[test]
    fn two_disjoint_cycles_give_two_components() {
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_unweighted([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let g = symmetrize(&b.build());
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default());
        let result = run(&engine);
        assert_eq!(result.values[..3], [0.0, 0.0, 0.0]);
        assert_eq!(result.values[3..], [3.0, 3.0, 3.0]);
        assert_eq!(component_count(&result.values), 2);
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let g = slfe_graph::GraphBuilder::new().with_vertices(5).build();
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine);
        assert_eq!(component_count(&result.values), 5);
        assert_eq!(reference(&g), result.values);
    }

    #[test]
    fn symmetrize_adds_reverse_edges_once() {
        let g = generators::path(4);
        let s = symmetrize(&g);
        assert_eq!(s.num_edges(), 6);
        assert!(s.has_edge(1, 0));
        assert!(s.has_edge(0, 1));
        // Symmetrising twice is a no-op in edge count.
        assert_eq!(symmetrize(&s).num_edges(), 6);
    }

    #[test]
    fn chain_collapses_to_the_smallest_id() {
        let g = symmetrize(&generators::path(64));
        let engine = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default());
        let result = run(&engine);
        assert!(result.values.iter().all(|&l| l == 0.0));
        assert!(result.converged);
    }
}
