/root/repo/target/debug/examples/quickstart-e608a5732c931bc0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e608a5732c931bc0: examples/quickstart.rs

examples/quickstart.rs:
