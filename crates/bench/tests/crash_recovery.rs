//! Kill-9 recovery proof: a durable serving process killed at randomized
//! points mid-batch-sequence must, after reopening (snapshot + WAL replay),
//! serve values **bit-identical** to an uninterrupted run — for every
//! registered application, at 1 and 4 workers per node.
//!
//! The child process (`crash_child`) prints `applied N` after each durably
//! applied batch; this test SIGKILLs it right after a seeded-random one of
//! those lines (so the kill lands mid-batch, mid-WAL-append, or mid-snapshot
//! of the *next* batch), twice per run, then lets a final incarnation finish
//! and compares the exact value bit patterns against an oracle that was
//! never interrupted.

use slfe_graph::rng::SplitMix64;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const BATCHES: u64 = 6;
const APPS: [&str; 9] = [
    "sssp", "bfs", "cc", "wp", "pr", "tr", "spmv", "heat", "numpaths",
];

fn child_command(dir: &Path, app: &str, workers: usize, seed: u64, values_out: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crash_child"));
    cmd.arg("--dir")
        .arg(dir)
        .arg("--app")
        .arg(app)
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--batches")
        .arg(BATCHES.to_string())
        .arg("--snapshot-every")
        .arg("2")
        .arg("--seed")
        .arg(seed.to_string())
        .arg("--values-out")
        .arg(values_out);
    cmd
}

fn run_to_completion(mut cmd: Command, label: &str) {
    let status = cmd
        .status()
        .unwrap_or_else(|e| panic!("{label}: spawn failed: {e}"));
    assert!(status.success(), "{label}: child exited with {status}");
}

/// Spawn the child and SIGKILL it as soon as it reports `kill_after` applied
/// batches (the kill then lands somewhere inside the *next* batch's WAL
/// append / apply / snapshot). The child may win the race and exit cleanly —
/// that's fine, the recovery path is still exercised by the reopen.
fn run_and_kill_after(mut cmd: Command, kill_after: u64, label: &str) {
    cmd.stdout(Stdio::piped());
    let mut child: Child = cmd
        .spawn()
        .unwrap_or_else(|e| panic!("{label}: spawn failed: {e}"));
    let stdout = child.stdout.take().expect("piped stdout");
    let reader = BufReader::new(stdout);
    for line in reader.lines() {
        let line = line.unwrap_or_default();
        if line == format!("applied {kill_after}") {
            let _ = child.kill(); // SIGKILL — no destructors, no flushes
            break;
        }
    }
    let _ = child.wait();
}

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slfe-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killed_servers_recover_bit_identical_values_for_every_app() {
    let base = temp_base("matrix");
    let mut rng = SplitMix64::seed_from_u64(0x5afe);
    for workers in [1usize, 4] {
        for app in APPS {
            let label = format!("{app} @{workers}w");
            let seed = 40 + workers as u64;
            let oracle_dir = base.join(format!("{app}-{workers}-oracle"));
            let crash_dir = base.join(format!("{app}-{workers}-crash"));
            let oracle_values = base.join(format!("{app}-{workers}-oracle.bin"));
            let crash_values = base.join(format!("{app}-{workers}-crash.bin"));

            // The never-interrupted oracle.
            run_to_completion(
                child_command(&oracle_dir, app, workers, seed, &oracle_values),
                &label,
            );

            // Kill #1 early, kill #2 later in the resumed run, then finish.
            let k1 = 1 + rng.next_u64() % (BATCHES - 2); // in [1, B-2]
            let k2 = k1 + 1 + rng.next_u64() % (BATCHES - 1 - k1); // in [k1+1, B-1]
            run_and_kill_after(
                child_command(&crash_dir, app, workers, seed, &crash_values),
                k1,
                &label,
            );
            run_and_kill_after(
                child_command(&crash_dir, app, workers, seed, &crash_values),
                k2,
                &label,
            );
            run_to_completion(
                child_command(&crash_dir, app, workers, seed, &crash_values),
                &label,
            );

            let oracle = std::fs::read(&oracle_values)
                .unwrap_or_else(|e| panic!("{label}: no oracle values: {e}"));
            let recovered = std::fs::read(&crash_values)
                .unwrap_or_else(|e| panic!("{label}: no recovered values: {e}"));
            assert!(!oracle.is_empty(), "{label}: oracle wrote no values");
            assert_eq!(
                oracle, recovered,
                "{label}: kill at {k1} then {k2} — recovered values are not bit-identical"
            );
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}
