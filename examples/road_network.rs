//! Route planning on a road-network-like graph: shortest paths and widest
//! (maximum-capacity) paths with the min/max ("start late") family.
//!
//! Road networks are grid-like with long shortest-path chains — the opposite regime
//! from social graphs — so this example also shows the engine's push/pull mode
//! breakdown (Figure 4's metric) on a high-diameter input.
//!
//! Run with: `cargo run --release --example road_network`

use slfe::prelude::*;

fn main() {
    // A 120 x 120 grid with an extra layer of random weighted "highway" edges.
    let grid = slfe::graph::generators::grid(120, 120);
    let mut builder = slfe::graph::GraphBuilder::new().with_vertices(grid.num_vertices());
    for e in grid.edges() {
        // Local roads: weight = travel time 1..5 derived from the endpoints.
        let w = 1.0 + ((e.src as u64 * 31 + e.dst as u64 * 17) % 5) as f32;
        builder.add_edge(e.src, e.dst, w);
        builder.add_edge(e.dst, e.src, w);
    }
    let graph = builder.build();
    println!(
        "road network: {} junctions, {} road segments",
        graph.num_vertices(),
        graph.num_edges()
    );

    let engine = SlfeEngine::build(&graph, ClusterConfig::new(4, 4), EngineConfig::default());
    let origin = 0;

    // Shortest travel time from the origin.
    let shortest = sssp::run(&engine, origin);
    let reachable = shortest.values.iter().filter(|d| d.is_finite()).count();
    let farthest = shortest
        .values
        .iter()
        .filter(|d| d.is_finite())
        .cloned()
        .fold(0.0f32, f32::max);
    println!(
        "\nSSSP from junction {origin}: {} reachable junctions, farthest at travel time {:.0}",
        reachable, farthest
    );
    let (pull, push) = shortest.stats.trace.mode_computations();
    println!(
        "  pull/push computation split: {:.1}% pull, {:.1}% push ({} iterations)",
        100.0 * pull as f64 / (pull + push).max(1) as f64,
        100.0 * push as f64 / (pull + push).max(1) as f64,
        shortest.iterations()
    );

    // Widest path: the best "capacity" route (e.g. max truck weight).
    let widest = widestpath::run(&engine, origin);
    let target = (graph.num_vertices() - 1) as u32;
    println!(
        "\nWidest path from {origin} to {target}: bottleneck capacity {:.1}",
        widest.values[target as usize]
    );

    // Verify both against their sequential oracles.
    let sssp_ok = slfe::apps::sssp::reference(&graph, origin)
        .iter()
        .zip(&shortest.values)
        .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
    let wp_ok = slfe::apps::widestpath::reference(&graph, origin)
        .iter()
        .zip(&widest.values)
        .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
    println!("\nverified against sequential oracles: sssp = {sssp_ok}, widest path = {wp_ok}");
}
