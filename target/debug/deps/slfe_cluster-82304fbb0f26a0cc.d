/root/repo/target/debug/deps/slfe_cluster-82304fbb0f26a0cc.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

/root/repo/target/debug/deps/libslfe_cluster-82304fbb0f26a0cc.rlib: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

/root/repo/target/debug/deps/libslfe_cluster-82304fbb0f26a0cc.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/config.rs:
crates/cluster/src/stealing.rs:
