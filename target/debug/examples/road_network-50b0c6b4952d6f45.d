/root/repo/target/debug/examples/road_network-50b0c6b4952d6f45.d: examples/road_network.rs Cargo.toml

/root/repo/target/debug/examples/libroad_network-50b0c6b4952d6f45.rmeta: examples/road_network.rs Cargo.toml

examples/road_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
