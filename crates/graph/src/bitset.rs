//! Dense bitset frontiers.
//!
//! Every engine in the workspace tracks which vertices are *active* each
//! iteration. A `Vec<bool>` spends one byte per vertex and makes counting the
//! active set an O(n) byte scan; the `u64`-word [`Bitset`] here spends one bit per
//! vertex, counts actives with hardware popcount, merges per-worker frontiers with
//! word-wise OR, and is reused across iterations (clearing is a `memset`, never an
//! allocation) — the same representation Ligra's dense frontiers and Gemini's
//! bitmaps use.
//!
//! [`AtomicBitset`] is the concurrent variant used by the parallel RRG
//! preprocessing pass: `fetch_or` lets exactly one worker win the "first visit" of
//! a vertex without locks.

use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

/// A fixed-length dense bitset over vertex ids `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// An all-zero bitset covering `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Build from a predicate over bit indices.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut set = Self::new(len);
        for i in 0..len {
            if f(i) {
                set.set(i);
            }
        }
        set
    }

    /// Number of bits covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bitset covers zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Set bit `i`, returning `true` if it was previously clear.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Clear bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Clear every bit. No allocation; the backing words are reused.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Set every bit (the full-reactivation case of Algorithm 3).
    pub fn fill(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    /// Number of set bits, via hardware popcount over the words.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if at least one bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Word-wise OR of `other` into `self` (per-worker frontier merging).
    /// Panics when lengths differ.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Number of set bits in the half-open index range `start..end`, via
    /// word-level popcounts (partial first/last words are masked, whole words in
    /// between use hardware popcount). The chunk-activity summaries call this
    /// once per chunk per iteration, so it must not degrade to a per-bit loop.
    pub fn count_in_range(&self, start: usize, end: usize) -> usize {
        debug_assert!(start <= end && end <= self.len, "range out of bounds");
        if start >= end {
            return 0;
        }
        let (first_word, first_bit) = (start / WORD_BITS, start % WORD_BITS);
        let (last_word, last_bit) = ((end - 1) / WORD_BITS, (end - 1) % WORD_BITS);
        // Mask off the bits below `start` in the first word and above `end - 1`
        // in the last word; when the range sits in one word both masks apply.
        let head_mask = u64::MAX << first_bit;
        let tail_mask = u64::MAX >> (WORD_BITS - 1 - last_bit);
        if first_word == last_word {
            return (self.words[first_word] & head_mask & tail_mask).count_ones() as usize;
        }
        let mut count = (self.words[first_word] & head_mask).count_ones() as usize;
        for &w in &self.words[first_word + 1..last_word] {
            count += w.count_ones() as usize;
        }
        count + (self.words[last_word] & tail_mask).count_ones() as usize
    }

    /// `true` when at least one bit is set in `start..end`. Unlike
    /// [`Bitset::count_in_range`] this stops at the first nonzero word, which is
    /// what makes it cheap as a per-chunk "anything active here?" probe even
    /// when the probed span is wide and the frontier dense.
    pub fn any_in_range(&self, start: usize, end: usize) -> bool {
        debug_assert!(start <= end && end <= self.len, "range out of bounds");
        if start >= end {
            return false;
        }
        let (first_word, first_bit) = (start / WORD_BITS, start % WORD_BITS);
        let (last_word, last_bit) = ((end - 1) / WORD_BITS, (end - 1) % WORD_BITS);
        let head_mask = u64::MAX << first_bit;
        let tail_mask = u64::MAX >> (WORD_BITS - 1 - last_bit);
        if first_word == last_word {
            return self.words[first_word] & head_mask & tail_mask != 0;
        }
        if self.words[first_word] & head_mask != 0 {
            return true;
        }
        if self.words[first_word + 1..last_word]
            .iter()
            .any(|&w| w != 0)
        {
            return true;
        }
        self.words[last_word] & tail_mask != 0
    }

    /// Call `f(index)` for every set bit in `start..end`, ascending, walking
    /// words and peeling bits with `trailing_zeros` (never a per-bit scan of
    /// clear regions).
    pub fn for_each_set_in_range(&self, start: usize, end: usize, mut f: impl FnMut(usize)) {
        debug_assert!(start <= end && end <= self.len, "range out of bounds");
        if start >= end {
            return;
        }
        let (first_word, first_bit) = (start / WORD_BITS, start % WORD_BITS);
        let (last_word, last_bit) = ((end - 1) / WORD_BITS, (end - 1) % WORD_BITS);
        for wi in first_word..=last_word {
            let mut word = self.words[wi];
            if wi == first_word {
                word &= u64::MAX << first_bit;
            }
            if wi == last_word {
                word &= u64::MAX >> (WORD_BITS - 1 - last_bit);
            }
            while word != 0 {
                f(wi * WORD_BITS + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
    }

    /// Iterate the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let base = wi * WORD_BITS;
            std::iter::successors(if word == 0 { None } else { Some(word) }, |w| {
                let next = w & (w - 1);
                if next == 0 {
                    None
                } else {
                    Some(next)
                }
            })
            .map(move |w| base + w.trailing_zeros() as usize)
        })
    }

    /// The raw backing words (tail bits beyond `len` are always zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Zero the bits at positions `>= len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// A fixed-length bitset whose bits are set concurrently with `fetch_or`.
#[derive(Debug)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitset {
    /// An all-zero atomic bitset covering `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: (0..len.div_ceil(WORD_BITS))
                .map(|_| AtomicU64::new(0))
                .collect(),
            len,
        }
    }

    /// Number of bits covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bitset covers zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / WORD_BITS].load(Ordering::Relaxed) >> (i % WORD_BITS)) & 1 != 0
    }

    /// Atomically set bit `i`, returning `true` if this call flipped it —
    /// exactly one concurrent caller wins.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        self.insert_shared(i)
    }

    /// [`AtomicBitset::insert`] through a shared reference (for worker threads).
    #[inline]
    pub fn insert_shared(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % WORD_BITS);
        self.words[i / WORD_BITS].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Snapshot into a plain [`Bitset`].
    pub fn to_bitset(&self) -> Bitset {
        Bitset {
            words: self
                .words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_insert_remove_roundtrip() {
        let mut b = Bitset::new(130);
        assert!(!b.get(0) && !b.get(129));
        assert!(b.insert(129));
        assert!(!b.insert(129), "second insert reports already-set");
        b.set(64);
        assert!(b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 2);
        b.remove(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn clear_and_fill_cover_the_whole_range() {
        let mut b = Bitset::new(100);
        b.fill();
        assert_eq!(
            b.count_ones(),
            100,
            "fill must mask the tail of the last word"
        );
        assert!(b.any());
        b.clear();
        assert_eq!(b.count_ones(), 0);
        assert!(!b.any());
    }

    #[test]
    fn iter_ones_is_ascending_and_complete() {
        let mut b = Bitset::new(200);
        let expected = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &expected {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn union_merges_worker_frontiers() {
        let mut a = Bitset::new(80);
        let mut b = Bitset::new(80);
        a.set(3);
        b.set(3);
        b.set(79);
        a.union_with(&b);
        assert!(a.get(3) && a.get(79));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_of_mismatched_lengths_panics() {
        Bitset::new(10).union_with(&Bitset::new(20));
    }

    #[test]
    fn from_fn_matches_predicate() {
        let b = Bitset::from_fn(50, |i| i % 7 == 0);
        for i in 0..50 {
            assert_eq!(b.get(i), i % 7 == 0);
        }
    }

    #[test]
    fn empty_bitset_is_well_behaved() {
        let b = Bitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
        assert!(!b.any());
    }

    /// Seeded-loop property test: the word-level range helpers must agree with
    /// the naive per-bit loop on random bitsets and random ranges, including
    /// word-boundary-straddling and single-word ranges.
    #[test]
    fn range_helpers_match_the_naive_per_bit_loop() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // SplitMix64 step (crate::rng is for graph generation; a local copy
            // keeps this test self-contained).
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for &len in &[1usize, 63, 64, 65, 127, 128, 200, 513] {
            let mut b = Bitset::new(len);
            for i in 0..len {
                if next() % 3 == 0 {
                    b.set(i);
                }
            }
            for _ in 0..50 {
                let a = (next() as usize) % (len + 1);
                let z = (next() as usize) % (len + 1);
                let (start, end) = if a <= z { (a, z) } else { (z, a) };
                let naive: Vec<usize> = (start..end).filter(|&i| b.get(i)).collect();
                assert_eq!(
                    b.count_in_range(start, end),
                    naive.len(),
                    "count_in_range({start}, {end}) on len {len}"
                );
                assert_eq!(
                    b.any_in_range(start, end),
                    !naive.is_empty(),
                    "any_in_range({start}, {end}) on len {len}"
                );
                let mut seen = Vec::new();
                b.for_each_set_in_range(start, end, |i| seen.push(i));
                assert_eq!(
                    seen, naive,
                    "for_each_set_in_range({start}, {end}) on len {len}"
                );
            }
        }
    }

    #[test]
    fn range_helpers_handle_degenerate_ranges() {
        let mut b = Bitset::new(130);
        b.fill();
        assert_eq!(b.count_in_range(64, 64), 0);
        assert!(!b.any_in_range(129, 129));
        assert_eq!(b.count_in_range(0, 130), 130);
        assert_eq!(b.count_in_range(63, 65), 2);
        let mut seen = 0usize;
        b.for_each_set_in_range(128, 130, |_| seen += 1);
        assert_eq!(seen, 2);
        let empty = Bitset::new(0);
        assert_eq!(empty.count_in_range(0, 0), 0);
        assert!(!empty.any_in_range(0, 0));
    }

    #[test]
    fn atomic_insert_has_exactly_one_winner_per_bit() {
        let set = AtomicBitset::new(1000);
        let wins: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let set = &set;
                    scope.spawn(move || (0..1000).filter(|&i| set.insert_shared(i)).count())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(
            wins, 1000,
            "each bit is claimed exactly once across threads"
        );
        assert_eq!(set.to_bitset().count_ones(), 1000);
    }

    #[test]
    fn atomic_snapshot_matches_plain_bitset() {
        let mut a = AtomicBitset::new(70);
        a.insert(0);
        a.insert(69);
        let b = a.to_bitset();
        assert!(b.get(0) && b.get(69));
        assert_eq!(b.count_ones(), 2);
    }
}
