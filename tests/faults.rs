//! Fault-injection acceptance tests (PR 8): the crashpoint sweep.
//!
//! PR 6 proved the server survives `kill -9`; this sweep proves it survives
//! everything *short* of death. For **every registered application** at 1 and
//! 4 workers, a deterministic [`FaultPlan`] injects a fault at each disk
//! injection site in turn — segment reads and writes, WAL append/fsync/trim,
//! snapshot write and rename, plus the open-time sites (WAL scan, snapshot
//! read) — and the server must either
//!
//! * complete with values **bit-identical to the fault-free oracle**
//!   (transient faults absorbed by retries, permanent segment-read faults
//!   absorbed by quarantine + rebuild), or
//! * return a **structured error** ([`ApplyError`] / `DurabilityError`) and
//!   keep answering point and top-k queries from the last published version.
//!
//! Zero panics, zero value divergence. The same file pins the guard the
//! telemetry PR established for its switch: fault injection compiled in but
//! disabled (no plan, or an armed plan that never fires) leaves every app
//! bit-identical with zero injections.

use slfe::apps::{bfs, cc, heat, numpaths, pagerank, spmv, sssp, tunkrank, widestpath};
use slfe::cluster::ClusterConfig;
use slfe::core::{EngineConfig, GraphProgram, RedundancyMode};
use slfe::delta::durability::SnapshotValue;
use slfe::delta::{DeltaServer, DurabilityConfig, DurabilityError, ServerConfig};
use slfe::graph::rng::SplitMix64;
use slfe::graph::{generators, stats, Graph};
use slfe::prelude::{ApplyError, FaultKind, FaultPlan, FaultSite, UpdateBatch};
use std::path::PathBuf;

/// The sites a live server's apply/snapshot path touches. `WalOpen` and
/// `SnapshotRead` only fire while opening — they get their own sweep below.
const APPLY_SITES: [FaultSite; 7] = [
    FaultSite::SegmentRead,
    FaultSite::SegmentWrite,
    FaultSite::WalAppend,
    FaultSite::WalFsync,
    FaultSite::WalTrim,
    FaultSite::SnapshotWrite,
    FaultSite::SnapshotRename,
];

fn fault_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slfe-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Exact bit patterns of the served values, for any snapshotable value type.
fn value_bytes<V: SnapshotValue>(values: &[V]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        v.write(&mut bytes);
    }
    bytes
}

#[derive(Clone, Copy)]
enum BatchKind {
    /// ~60% upserts (some growing the id space), ~40% deletions.
    Mixed { allow_growth: bool },
    /// Symmetric edge pairs for the undirected CC semantics.
    Symmetric,
    /// Forward-only insertions keeping the layered DAG acyclic.
    Dag,
}

/// The batch for step `i` — a pure function of the current graph and the
/// seed, so the oracle run and every faulted run (whose absorbed faults leave
/// the graph bit-identical) generate identical sequences.
fn make_batch(graph: &Graph, seed: u64, kind: BatchKind) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    for _ in 0..12 {
        match kind {
            BatchKind::Mixed { allow_growth } => {
                let src = rng.range_u32(0, n);
                if rng.next_f64() < 0.6 {
                    let hi = if allow_growth { n + 6 } else { n };
                    batch.insert(src, rng.range_u32(0, hi), rng.range_f32(1.0, 10.0));
                } else {
                    let outs = graph.out_neighbors(src);
                    if !outs.is_empty() {
                        batch.delete(src, outs[rng.range_usize(0, outs.len())]);
                    }
                }
            }
            BatchKind::Symmetric => {
                let a = rng.range_u32(0, n);
                let b = rng.range_u32(0, n);
                if rng.next_f64() < 0.6 {
                    batch.insert_symmetric(a, b, 1.0);
                } else if graph.has_edge(a, b) {
                    batch.delete_symmetric(a, b);
                }
            }
            BatchKind::Dag => {
                let a = rng.range_u32(0, n - 1);
                if rng.next_f64() < 0.6 {
                    batch.insert(a, rng.range_u32(a + 1, n), 1.0);
                } else {
                    let outs = graph.out_neighbors(a);
                    if !outs.is_empty() {
                        batch.delete(a, outs[rng.range_usize(0, outs.len())]);
                    }
                }
            }
        }
    }
    batch
}

/// Out-of-core serving config: the tight budget forces segment evictions so
/// the `SegmentRead`/`SegmentWrite` sites are genuinely on the apply path.
fn server_config(workers: usize, engine: EngineConfig) -> ServerConfig {
    ServerConfig {
        cluster: ClusterConfig::new(2, workers),
        engine: engine
            .with_trace(false)
            .with_storage_budget(24 << 10)
            .with_storage_segment_bytes(2 << 10),
        ..ServerConfig::default()
    }
}

/// The arithmetic apps need the ruler-free exact-fixpoint configuration
/// (mirroring the crash matrix).
fn exact_config() -> EngineConfig {
    EngineConfig::default()
        .with_redundancy(RedundancyMode::Disabled)
        .with_max_iterations(400)
}

/// A plan that is armed (every site scheduled) but never fires: every rule
/// waits for a call number no test run ever reaches.
fn never_firing_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    for site in slfe::graph::ALL_FAULT_SITES {
        plan = plan.fail(site, 1 << 40, FaultKind::Transient { failures: 1 });
    }
    plan
}

/// The headline sweep for one app: at 1 and 4 workers, run a fault-free
/// oracle, then re-run the identical batch sequence once per apply-path
/// injection site with a transient fault scheduled at that site's next call.
/// Every faulted run must complete — retried, counted — and finish
/// bit-identical to the oracle.
fn crashpoint_sweep<P, F>(
    tag: &str,
    seed: u64,
    make_graph: impl Fn() -> Graph,
    make_program: F,
    engine: EngineConfig,
    kind: BatchKind,
) where
    P: GraphProgram,
    P::Value: SnapshotValue,
    F: Fn(&Graph) -> P + Clone,
{
    const BATCHES: u64 = 3;
    for workers in [1usize, 4] {
        let config = server_config(workers, engine.clone());

        let dir = fault_dir(&format!("{tag}-oracle-{workers}"));
        let durability = DurabilityConfig::new(&dir).with_snapshot_every(2);
        let mut oracle = DeltaServer::create_durable(
            make_graph(),
            make_program.clone(),
            config.clone(),
            durability,
        )
        .expect("oracle server");
        for i in 0..BATCHES {
            let batch = make_batch(oracle.graph(), seed + i, kind);
            oracle.apply(&batch);
        }
        let oracle_final = value_bytes(oracle.values());
        assert_eq!(
            oracle.fault_counters().injected_total(),
            0,
            "{tag}: the oracle must run fault-free"
        );
        drop(oracle);
        let _ = std::fs::remove_dir_all(&dir);

        for site in APPLY_SITES {
            let dir = fault_dir(&format!("{tag}-{}-{workers}", site.name()));
            let durability = DurabilityConfig::new(&dir).with_snapshot_every(2);
            let mut server = DeltaServer::create_durable(
                make_graph(),
                make_program.clone(),
                config.clone(),
                durability,
            )
            .expect("faulted server");
            // One clean batch, then schedule the fault at the site's next call.
            let batch = make_batch(server.graph(), seed, kind);
            server
                .try_apply(&batch)
                .unwrap_or_else(|e| panic!("{tag}/{workers}w: clean batch failed: {e}"));
            server.fault_injector().arm(FaultPlan::new().fail(
                site,
                0,
                FaultKind::Transient { failures: 1 },
            ));
            for i in 1..BATCHES {
                let batch = make_batch(server.graph(), seed + i, kind);
                let outcome = server.try_apply(&batch).unwrap_or_else(|e| {
                    panic!(
                        "{tag}/{}/{workers}w: transient fault was not absorbed: {e}",
                        site.name()
                    )
                });
                assert!(outcome.converged);
            }
            let counters = server.fault_counters();
            assert!(
                counters.injected_total() >= 1,
                "{tag}/{}/{workers}w: the scheduled site never fired",
                site.name()
            );
            assert!(
                counters.io_retries >= 1 && counters.io_retry_successes >= 1,
                "{tag}/{}/{workers}w: the transient fault was not absorbed by a retry \
                 (counters: {counters:?})",
                site.name()
            );
            assert!(
                !server.health().is_read_only(),
                "{tag}/{}/{workers}w: a transient fault must not disable the server",
                site.name()
            );
            assert_eq!(
                value_bytes(server.values()),
                oracle_final,
                "{tag}/{}/{workers}w: faulted run diverges from the fault-free oracle",
                site.name()
            );
            drop(server);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn crashpoint_sweep_sssp() {
    let root = stats::highest_out_degree_vertex(&sweep_rmat(900)).unwrap();
    crashpoint_sweep(
        "sssp",
        8100,
        || sweep_rmat(900),
        move |_: &Graph| sssp::SsspProgram { root },
        EngineConfig::default(),
        GROW,
    );
}

#[test]
fn crashpoint_sweep_bfs() {
    let root = stats::highest_out_degree_vertex(&sweep_rmat(910)).unwrap();
    crashpoint_sweep(
        "bfs",
        8200,
        || sweep_rmat(910),
        move |_: &Graph| bfs::BfsProgram { root },
        EngineConfig::default(),
        GROW,
    );
}

#[test]
fn crashpoint_sweep_widestpath() {
    let root = stats::highest_out_degree_vertex(&sweep_rmat(920)).unwrap();
    crashpoint_sweep(
        "wp",
        8300,
        || sweep_rmat(920),
        move |_: &Graph| widestpath::WidestPathProgram { root },
        EngineConfig::default(),
        GROW,
    );
}

#[test]
fn crashpoint_sweep_cc() {
    crashpoint_sweep(
        "cc",
        8400,
        || cc::symmetrize(&generators::rmat(180, 800, 0.57, 0.19, 0.19, 930)),
        cc::CcProgram::for_graph,
        EngineConfig::default(),
        BatchKind::Symmetric,
    );
}

#[test]
fn crashpoint_sweep_pagerank() {
    crashpoint_sweep(
        "pr",
        8500,
        || sweep_rmat(940),
        pagerank::PageRankProgram::for_graph,
        exact_config(),
        GROW,
    );
}

#[test]
fn crashpoint_sweep_tunkrank() {
    crashpoint_sweep(
        "tr",
        8600,
        || sweep_rmat(950),
        |_: &Graph| tunkrank::TunkRankProgram::default(),
        exact_config(),
        FIXED,
    );
}

#[test]
fn crashpoint_sweep_spmv() {
    crashpoint_sweep(
        "spmv",
        8700,
        || sweep_rmat(960),
        |g: &Graph| spmv::SpmvProgram::ones(g.num_vertices()),
        exact_config(),
        GROW,
    );
}

#[test]
fn crashpoint_sweep_heat() {
    let root = stats::highest_out_degree_vertex(&sweep_rmat(970)).unwrap();
    crashpoint_sweep(
        "heat",
        8800,
        || sweep_rmat(970),
        move |g: &Graph| heat::HeatProgram::point_source(g, root),
        // Lighter than the crash matrix's 1e-6/3000: the sweep runs 16
        // server lifetimes per worker count and only needs determinism,
        // which holds at any tolerance.
        exact_config().with_tolerance(1e-4).with_max_iterations(800),
        FIXED,
    );
}

#[test]
fn crashpoint_sweep_numpaths() {
    crashpoint_sweep(
        "numpaths",
        8900,
        || generators::layered(8, 30, 4, 980),
        |_: &Graph| numpaths::NumPathsProgram { root: 0 },
        exact_config(),
        BatchKind::Dag,
    );
}

fn sweep_rmat(seed: u64) -> Graph {
    generators::rmat(220, 1400, 0.57, 0.19, 0.19, seed)
}

const GROW: BatchKind = BatchKind::Mixed { allow_growth: true };
const FIXED: BatchKind = BatchKind::Mixed {
    allow_growth: false,
};

/// Permanent (retry-exhausting) faults, one site at a time: each site's
/// contract is either *recover bit-identically* (segment reads quarantine and
/// rebuild; snapshot/trim failures are absorbed with health degraded) or
/// *fail typed and keep serving the previous version* (WAL appends and
/// un-patchable segment stores flip the server read-only).
#[test]
fn permanent_faults_recover_or_fail_typed_per_site() {
    let graph = sweep_rmat(990);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };
    let seed = 9100u64;
    for workers in [1usize, 4] {
        let config = server_config(workers, EngineConfig::default());

        // Fault-free witness: values after each of the three batches.
        let dir = fault_dir(&format!("perm-witness-{workers}"));
        let mut witness = DeltaServer::create_durable(
            graph.clone(),
            make,
            config.clone(),
            DurabilityConfig::new(&dir).with_snapshot_every(2),
        )
        .unwrap();
        let mut after: Vec<Vec<u8>> = Vec::new();
        for i in 0..3u64 {
            let batch = make_batch(witness.graph(), seed + i, GROW);
            witness.apply(&batch);
            after.push(value_bytes(witness.values()));
        }
        drop(witness);
        let _ = std::fs::remove_dir_all(&dir);

        for site in APPLY_SITES {
            let dir = fault_dir(&format!("perm-{}-{workers}", site.name()));
            let mut server = DeltaServer::create_durable(
                graph.clone(),
                make,
                config.clone(),
                DurabilityConfig::new(&dir).with_snapshot_every(2),
            )
            .unwrap();
            let batch = make_batch(server.graph(), seed, GROW);
            server.try_apply(&batch).unwrap();
            server
                .fault_injector()
                .arm(FaultPlan::new().fail(site, 0, FaultKind::Permanent));

            let batch = make_batch(server.graph(), seed + 1, GROW);
            let second = server.try_apply(&batch);
            match site {
                // Unreadable segments are quarantined and rebuilt from the
                // in-memory recovery source: the apply completes exactly.
                FaultSite::SegmentRead => {
                    second.unwrap_or_else(|e| {
                        panic!("{workers}w: permanent segment read should recover: {e}")
                    });
                    assert!(server.fault_counters().segments_quarantined >= 1);
                    assert!(!server.health().is_read_only());
                    assert_eq!(value_bytes(server.values()), after[1]);
                }
                // Failed snapshots and WAL trims are absorbed: the batch
                // lands, health records the degradation, serving continues.
                FaultSite::SnapshotWrite | FaultSite::SnapshotRename | FaultSite::WalTrim => {
                    let outcome = second.unwrap_or_else(|e| {
                        panic!("{workers}w/{}: must be absorbed: {e}", site.name())
                    });
                    assert_eq!(value_bytes(server.values()), after[1]);
                    assert!(!server.health().is_read_only());
                    if site == FaultSite::WalTrim {
                        assert!(server.health().wal_trim_failures() >= 1);
                    } else {
                        assert!(outcome.degraded, "snapshot failure must mark the outcome");
                        assert!(server.health().is_degraded());
                        assert!(server.health().snapshot_failures() >= 1);
                        assert!(server.health().last_snapshot_error().is_some());
                    }
                    // The next batch still applies read-write.
                    let batch = make_batch(server.graph(), seed + 2, GROW);
                    server.try_apply(&batch).unwrap();
                    assert_eq!(value_bytes(server.values()), after[2]);
                }
                // Breaking the durability contract itself rejects the batch
                // and flips read-only — still serving the previous version.
                FaultSite::WalAppend | FaultSite::WalFsync | FaultSite::SegmentWrite => {
                    let err = second.expect_err("the durability contract was broken");
                    match site {
                        FaultSite::SegmentWrite => assert!(
                            matches!(err, ApplyError::StoragePatch(_)),
                            "{workers}w: got {err}"
                        ),
                        _ => assert!(
                            matches!(err, ApplyError::WalAppend(_)),
                            "{workers}w: got {err}"
                        ),
                    }
                    assert!(server.health().is_read_only());
                    assert!(server.health().read_only_reason().is_some());
                    // The last published version keeps answering queries.
                    assert_eq!(value_bytes(server.values()), after[0]);
                    assert_eq!(server.value(root), Some(0.0));
                    assert_eq!(server.top_k(3).len(), 3);
                    // Subsequent applies are rejected without touching disk.
                    let batch = make_batch(server.graph(), seed + 2, GROW);
                    assert!(matches!(
                        server.try_apply(&batch),
                        Err(ApplyError::ReadOnly { .. })
                    ));
                }
                FaultSite::WalOpen | FaultSite::SnapshotRead => unreachable!(),
            }
            drop(server);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Open-time sites: a transient fault while reading the snapshot or scanning
/// the WAL is retried and recovery completes bit-identically; a permanent one
/// is a structured [`DurabilityError`] — and a later fault-free open of the
/// same directory still recovers everything.
#[test]
fn open_time_faults_recover_or_fail_typed() {
    let graph = sweep_rmat(1000);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };
    for workers in [1usize, 4] {
        let config = server_config(workers, EngineConfig::default());
        let dir = fault_dir(&format!("open-{workers}"));
        // High cadence: both batches stay in the WAL for replay at open.
        let durability = DurabilityConfig::new(&dir).with_snapshot_every(100);
        let mut server =
            DeltaServer::create_durable(graph.clone(), make, config.clone(), durability.clone())
                .unwrap();
        for i in 0..2u64 {
            let batch = make_batch(server.graph(), 9300 + i, GROW);
            server.apply(&batch);
        }
        let expected = value_bytes(server.values());
        drop(server);

        for site in [FaultSite::WalOpen, FaultSite::SnapshotRead] {
            // Transient: absorbed by the open-path retries.
            let faulted = ServerConfig {
                fault_plan: Some(FaultPlan::new().fail(
                    site,
                    0,
                    FaultKind::Transient { failures: 1 },
                )),
                ..config.clone()
            };
            let reopened =
                DeltaServer::open(make, faulted, durability.clone()).unwrap_or_else(|e| {
                    panic!(
                        "{workers}w/{}: transient open fault not absorbed: {e}",
                        site.name()
                    )
                });
            assert_eq!(value_bytes(reopened.values()), expected);
            assert_eq!(
                reopened.durability_counters().unwrap().wal_entries_replayed,
                2
            );
            let counters = reopened.fault_counters();
            assert!(counters.injected_total() >= 1 && counters.io_retries >= 1);
            drop(reopened);

            // Permanent: a typed error, no panic, directory left intact.
            let faulted = ServerConfig {
                fault_plan: Some(FaultPlan::new().fail(site, 0, FaultKind::Permanent)),
                ..config.clone()
            };
            let err = DeltaServer::open(make, faulted, durability.clone())
                .err()
                .unwrap_or_else(|| {
                    panic!("{workers}w/{}: permanent open fault must fail", site.name())
                });
            assert!(matches!(err, DurabilityError::Io(_)), "got {err}");
        }

        // A short snapshot read truncates the buffer: the CRC rejects it as
        // a corrupt snapshot rather than silently serving half the values.
        let faulted = ServerConfig {
            fault_plan: Some(FaultPlan::new().fail(FaultSite::SnapshotRead, 0, FaultKind::ShortIo)),
            ..config.clone()
        };
        let err = DeltaServer::open(make, faulted, durability.clone())
            .err()
            .expect("a short snapshot read must be rejected");
        assert!(
            matches!(err, DurabilityError::CorruptSnapshot { .. }),
            "got {err}"
        );

        // A short WAL read at open must NOT truncate durable frames that are
        // intact on disk — the scan fails and the retry re-reads them.
        let faulted = ServerConfig {
            fault_plan: Some(FaultPlan::new().fail(FaultSite::WalOpen, 0, FaultKind::ShortIo)),
            ..config.clone()
        };
        let reopened = DeltaServer::open(make, faulted, durability.clone()).unwrap();
        assert_eq!(value_bytes(reopened.values()), expected);
        drop(reopened);

        // After every faulted open above, a fault-free open still recovers.
        let reopened = DeltaServer::open(make, config.clone(), durability.clone()).unwrap();
        assert_eq!(value_bytes(reopened.values()), expected);
        assert_eq!(reopened.fault_counters().injected_total(), 0);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// ENOSPC on the WAL path: never retried (retrying a full disk is pointless),
/// flips the server into typed read-only mode, and the last published version
/// keeps answering point and top-k queries.
#[test]
fn disk_full_flips_read_only_and_queries_still_answer() {
    let graph = sweep_rmat(1010);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };
    let config = server_config(2, EngineConfig::default());
    let dir = fault_dir("enospc");
    let mut server = DeltaServer::create_durable(
        graph,
        make,
        config,
        DurabilityConfig::new(&dir).with_snapshot_every(100),
    )
    .unwrap();
    let batch = make_batch(server.graph(), 9400, GROW);
    server.apply(&batch);
    let served = value_bytes(server.values());
    let retries_before = server.fault_counters().io_retries;

    server.fault_injector().arm(FaultPlan::new().fail(
        FaultSite::WalAppend,
        0,
        FaultKind::DiskFull,
    ));
    let batch = make_batch(server.graph(), 9401, GROW);
    let err = server
        .try_apply(&batch)
        .expect_err("ENOSPC must reject the batch");
    assert!(matches!(err, ApplyError::WalAppend(_)), "got {err}");

    assert!(server.health().is_read_only());
    let reason = server.health().read_only_reason().unwrap();
    assert!(reason.contains("ENOSPC"), "reason: {reason}");
    let counters = server.fault_counters();
    assert!(counters.injected_disk_full >= 1);
    assert_eq!(
        counters.io_retries, retries_before,
        "a full disk must not be retried"
    );

    // The previous version still serves point and top-k queries.
    assert_eq!(value_bytes(server.values()), served);
    assert_eq!(server.value(root), Some(0.0));
    let nearest = server.top_k_by(5, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    assert_eq!(nearest.len(), 5);
    assert_eq!(nearest[0], (root, 0.0));

    // Applies keep failing typed; health is exported through the registry.
    let batch = make_batch(server.graph(), 9402, GROW);
    assert!(matches!(
        server.try_apply(&batch),
        Err(ApplyError::ReadOnly { .. })
    ));
    let reg = server.metrics_registry();
    assert_eq!(reg.get("slfe_health_read_only").unwrap().value, 1.0);
    assert!(
        reg.get_with("slfe_faults_injected_total", &[("kind", "disk_full")])
            .unwrap()
            .value
            >= 1.0
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3: WAL replay idempotence across the snapshot/trim window. A
/// trim (the `set_len` + fsync after a successful snapshot rename) failing at
/// *every* call offset in the schedule — both retry-exhausting and
/// retry-absorbed — leaves stale covered entries in the WAL; reopening must
/// skip exactly those and replay only the uncovered suffix, recovering values
/// bit-identical to the fault-free witness every time.
#[test]
fn wal_replay_is_idempotent_under_trim_failures_at_every_offset() {
    let graph = sweep_rmat(1020);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };
    let seed = 9500u64;
    let config = server_config(1, EngineConfig::default());

    // Witness: 5 batches, snapshots (and trims) at sequences 2 and 4.
    let dir = fault_dir("trim-witness");
    let mut witness = DeltaServer::create_durable(
        graph.clone(),
        make,
        config.clone(),
        DurabilityConfig::new(&dir).with_snapshot_every(2),
    )
    .unwrap();
    for i in 0..5u64 {
        let batch = make_batch(witness.graph(), seed + i, GROW);
        witness.apply(&batch);
    }
    let expected = value_bytes(witness.values());
    drop(witness);
    let _ = std::fs::remove_dir_all(&dir);

    let mut trim_failures_seen = 0u64;
    for kind in [FaultKind::Permanent, FaultKind::Transient { failures: 4 }] {
        for offset in 0..6u64 {
            let dir = fault_dir(&format!(
                "trim-{offset}-{}",
                matches!(kind, FaultKind::Permanent)
            ));
            let durability = DurabilityConfig::new(&dir).with_snapshot_every(2);
            let mut server = DeltaServer::create_durable(
                graph.clone(),
                make,
                config.clone(),
                durability.clone(),
            )
            .unwrap();
            // Arm after creation (whose own trim must stay clean), before any
            // snapshot-path trim runs. Each retry attempt is its own call, so
            // the offsets cover first-attempt, mid-retry and second-trim hits.
            server
                .fault_injector()
                .arm(FaultPlan::new().fail(FaultSite::WalTrim, offset, kind));
            for i in 0..5u64 {
                let batch = make_batch(server.graph(), seed + i, GROW);
                server.try_apply(&batch).unwrap_or_else(|e| {
                    panic!("offset {offset}: a trim failure must never fail an apply: {e}")
                });
            }
            trim_failures_seen += server.health().wal_trim_failures();
            assert!(!server.health().is_read_only());
            assert_eq!(value_bytes(server.values()), expected);
            drop(server);

            // Reopen fault-free: entries the snapshots already cover must be
            // skipped, the uncovered suffix (sequence 5 alone) replayed.
            let reopened = DeltaServer::open(make, config.clone(), durability).unwrap();
            assert_eq!(
                value_bytes(reopened.values()),
                expected,
                "offset {offset}: replay after a trim failure diverges"
            );
            assert_eq!(reopened.stats().batches_applied, 5);
            assert_eq!(
                reopened.durability_counters().unwrap().wal_entries_replayed,
                1,
                "offset {offset}: covered entries must be skipped, the suffix replayed"
            );
            drop(reopened);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(
        trim_failures_seen > 0,
        "the offset schedule never actually failed a trim"
    );
}

/// Chaos: the seeded whole-schedule plan (one transient fault at every site,
/// offsets drawn from the seed) across create → serve → reopen → serve must
/// stay bit-identical to a fault-free witness of the same lifecycle.
#[test]
fn seeded_transient_chaos_stays_bit_identical() {
    let graph = sweep_rmat(1030);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };

    let lifecycle = |plan: Option<FaultPlan>, seed: u64, tag: &str| -> (Vec<u8>, u64) {
        let config = ServerConfig {
            fault_plan: plan.clone(),
            ..server_config(2, EngineConfig::default())
        };
        let dir = fault_dir(tag);
        // The seeded schedule faults every site, and one WAL append drives
        // *two* of them (append + fsync): their transient windows can stack
        // up to four failures inside a single operation, so give the WAL a
        // retry budget that covers the worst-case stack. Jitter rides the
        // same seed as the fault plan — de-synchronized sleeps must not
        // move a single bit of the result.
        let retry = slfe::prelude::RetryPolicy {
            max_retries: 8,
            ..Default::default()
        }
        .with_jitter_seed(seed);
        let durability = DurabilityConfig::new(&dir)
            .with_snapshot_every(2)
            .with_retry(retry);
        let mut server =
            DeltaServer::create_durable(graph.clone(), make, config.clone(), durability.clone())
                .unwrap();
        for i in 0..3u64 {
            let batch = make_batch(server.graph(), 9600 + i, GROW);
            server.apply(&batch);
        }
        let mut injected = server.fault_counters().injected_total();
        drop(server);
        let mut server = DeltaServer::open(make, config, durability).unwrap();
        let batch = make_batch(server.graph(), 9603, GROW);
        server.apply(&batch);
        injected += server.fault_counters().injected_total();
        let bytes = value_bytes(server.values());
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
        (bytes, injected)
    };

    let (expected, zero) = lifecycle(None, 0, "chaos-witness");
    assert_eq!(zero, 0);
    for seed in [1u64, 7, 23] {
        let (bytes, injected) = lifecycle(
            Some(FaultPlan::seeded_transient(seed)),
            seed,
            &format!("chaos-{seed}"),
        );
        assert!(
            injected > 0,
            "seed {seed}: the seeded schedule never fired a fault"
        );
        assert_eq!(
            bytes, expected,
            "seed {seed}: seeded transient chaos diverged from the witness"
        );
    }
}

/// The guard the telemetry PR established for its switch, applied to fault
/// injection: compiled in but disabled — no plan, or an armed plan that never
/// fires — every registered app serves values bit-identical at 1 and 4
/// workers, with zero injections recorded.
fn check_disabled_faults_are_invisible<P, F>(
    tag: &str,
    seed: u64,
    make_graph: impl Fn() -> Graph,
    make_program: F,
    engine: EngineConfig,
    kind: BatchKind,
) where
    P: GraphProgram,
    P::Value: SnapshotValue,
    F: Fn(&Graph) -> P + Clone,
{
    for workers in [1usize, 4] {
        let mut finals: Vec<Vec<u8>> = Vec::new();
        for (which, plan) in [(0, None), (1, Some(never_firing_plan()))] {
            let config = ServerConfig {
                fault_plan: plan,
                ..server_config(workers, engine.clone())
            };
            let dir = fault_dir(&format!("guard-{tag}-{workers}-{which}"));
            let mut server = DeltaServer::create_durable(
                make_graph(),
                make_program.clone(),
                config,
                DurabilityConfig::new(&dir).with_snapshot_every(2),
            )
            .expect("guard server");
            for i in 0..2u64 {
                let batch = make_batch(server.graph(), seed + i, kind);
                server.apply(&batch);
            }
            assert_eq!(
                server.fault_counters().injected_total(),
                0,
                "{tag}/{workers}w: a disabled or never-firing plan injected a fault"
            );
            finals.push(value_bytes(server.values()));
            drop(server);
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(
            finals[0], finals[1],
            "{tag}/{workers}w: the armed-but-silent injector perturbed the values"
        );
    }
}

#[test]
fn disabled_fault_injection_is_bit_identical_for_every_app() {
    let root = stats::highest_out_degree_vertex(&sweep_rmat(1100)).unwrap();
    check_disabled_faults_are_invisible(
        "sssp",
        9700,
        || sweep_rmat(1100),
        move |_: &Graph| sssp::SsspProgram { root },
        EngineConfig::default(),
        GROW,
    );
    check_disabled_faults_are_invisible(
        "bfs",
        9710,
        || sweep_rmat(1100),
        move |_: &Graph| bfs::BfsProgram { root },
        EngineConfig::default(),
        GROW,
    );
    check_disabled_faults_are_invisible(
        "wp",
        9720,
        || sweep_rmat(1100),
        move |_: &Graph| widestpath::WidestPathProgram { root },
        EngineConfig::default(),
        GROW,
    );
    check_disabled_faults_are_invisible(
        "cc",
        9730,
        || cc::symmetrize(&generators::rmat(180, 800, 0.57, 0.19, 0.19, 1110)),
        cc::CcProgram::for_graph,
        EngineConfig::default(),
        BatchKind::Symmetric,
    );
    check_disabled_faults_are_invisible(
        "pr",
        9740,
        || sweep_rmat(1100),
        pagerank::PageRankProgram::for_graph,
        exact_config(),
        GROW,
    );
    check_disabled_faults_are_invisible(
        "tr",
        9750,
        || sweep_rmat(1100),
        |_: &Graph| tunkrank::TunkRankProgram::default(),
        exact_config(),
        FIXED,
    );
    check_disabled_faults_are_invisible(
        "spmv",
        9760,
        || sweep_rmat(1100),
        |g: &Graph| spmv::SpmvProgram::ones(g.num_vertices()),
        exact_config(),
        GROW,
    );
    check_disabled_faults_are_invisible(
        "heat",
        9770,
        || sweep_rmat(1100),
        move |g: &Graph| heat::HeatProgram::point_source(g, root),
        exact_config().with_tolerance(1e-4).with_max_iterations(800),
        FIXED,
    );
    check_disabled_faults_are_invisible(
        "numpaths",
        9780,
        || generators::layered(8, 30, 4, 1120),
        |_: &Graph| numpaths::NumPathsProgram { root: 0 },
        exact_config(),
        BatchKind::Dag,
    );
}
