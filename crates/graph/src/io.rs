//! Plain-text edge-list I/O.
//!
//! The format is the SNAP-style whitespace-separated edge list the paper's datasets
//! ship in: one edge per line, `src dst [weight]`, with `#`-prefixed comment lines.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::{EdgeWeight, VertexId, INVALID_VERTEX};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and its content.
    Parse { line: usize, content: String },
    /// A vertex id falls outside the valid id space: at or above the header's
    /// declared vertex count, or — absent a header — at or above
    /// [`crate::INVALID_VERTEX`] (the reserved sentinel). Earlier revisions
    /// silently truncated such ids through the `u32` parse; a graph quietly
    /// missing declared vertices is far worse than a load failure, so this is
    /// now a structured error carrying the 1-based line and the offending id.
    IdOutOfRange {
        /// 1-based line number of the offending edge.
        line: usize,
        /// The offending vertex id as written in the file.
        id: u64,
        /// First invalid id: the declared vertex count when a header bounds
        /// the id space, the sentinel otherwise.
        limit: u64,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
            LoadError::IdOutOfRange { line, id, limit } => {
                write!(
                    f,
                    "vertex id {id} on line {line} is outside the valid id space (limit {limit})"
                )
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Extract the declared vertex count from the header comment this module's
/// writer emits (`# slfe edge list: N vertices, M edges`). Foreign comment
/// lines simply do not match.
fn declared_vertices(comment: &str) -> Option<usize> {
    let rest = comment.strip_prefix("# slfe edge list:")?.trim_start();
    let count_tok = rest.split_whitespace().next()?;
    rest.split_whitespace()
        .nth(1)
        .filter(|&unit| unit.starts_with("vertices"))?;
    count_tok.parse().ok()
}

/// Parse an edge list from any reader. Lines beginning with `#` or `%` and blank
/// lines are skipped, except that this module's own header comment
/// (`# slfe edge list: N vertices, ...`) declares the vertex count: the graph
/// then gets exactly `N` vertices (isolated trailing vertices survive a
/// round-trip) and any edge endpoint `>= N` is a [`LoadError::IdOutOfRange`]
/// instead of silently growing — or, before this check existed, silently
/// corrupting — the id space. Each remaining line must be `src dst` or
/// `src dst weight`.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, LoadError> {
    let mut builder = GraphBuilder::new();
    let mut declared: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            if declared.is_none() {
                if let Some(n) = declared_vertices(trimmed) {
                    // The id space tops out below the sentinel; a header
                    // declaring more vertices than that describes a graph
                    // this format cannot hold (and would otherwise drive a
                    // huge allocation), so it fails at the header line.
                    if n as u64 > INVALID_VERTEX as u64 {
                        return Err(LoadError::Parse {
                            line: idx + 1,
                            content: line,
                        });
                    }
                    declared = Some(n);
                    builder = builder.with_vertices(n);
                }
            }
            continue;
        }
        // Ids parse as u64 first so an id too large for `VertexId` is reported
        // as the id it actually was, not as a generic parse failure. A header
        // may declare any count, but the id space itself still tops out at
        // the sentinel — without the cap, a declared count past 2^32 would
        // let huge ids through to a silently wrapping `as VertexId` cast.
        let limit = declared
            .map(|n| (n as u64).min(INVALID_VERTEX as u64))
            .unwrap_or(INVALID_VERTEX as u64);
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u64> { tok?.parse().ok() };
        let src = parse(parts.next());
        let dst = parse(parts.next());
        let weight: Option<EdgeWeight> = match parts.next() {
            None => Some(1.0),
            Some(tok) => tok.parse().ok(),
        };
        match (src, dst, weight) {
            (Some(s), Some(d), Some(w)) if parts.next().is_none() => {
                if let Some(&id) = [s, d].iter().find(|&&id| id >= limit) {
                    return Err(LoadError::IdOutOfRange {
                        line: idx + 1,
                        id,
                        limit,
                    });
                }
                builder.add_edge(s as VertexId, d as VertexId, w);
            }
            _ => {
                return Err(LoadError::Parse {
                    line: idx + 1,
                    content: line,
                });
            }
        }
    }
    Ok(builder.build())
}

/// Load an edge-list file from disk.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Graph, LoadError> {
    let file = File::open(path)?;
    read_edge_list(BufReader::new(file))
}

/// Write a graph as a weighted edge list.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# slfe edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for v in graph.vertices() {
        for (u, w) in graph.out_edges(v) {
            writeln!(writer, "{v} {u} {w}")?;
        }
    }
    Ok(())
}

/// Save a graph as a weighted edge-list file.
pub fn save_edge_list(graph: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_edge_list(graph, &mut writer)?;
    writer.flush()
}

/// Little-endian binary primitives, a CRC32 checksum, and an *exact* graph
/// codec — the building blocks of the durability layer (WAL frames and
/// snapshot files in `slfe-delta`).
///
/// The graph codec persists the raw CSR/CSC arrays of both directions rather
/// than an edge list: rebuilding from edges re-sorts adjacency lists with
/// `sort_unstable`, which may reorder duplicate `(src, dst)` pairs carrying
/// different weights. Arithmetic programs fold weights in physical array
/// order, so recovery-to-bit-equality needs the *physical* representation
/// back, not merely an equivalent multigraph.
pub mod binary {
    use crate::csr::Adjacency;
    use crate::graph::Graph;
    use crate::types::{EdgeWeight, VertexId};

    /// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table.
    const CRC_TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };

    /// CRC32 (IEEE) of `bytes` — the checksum guarding WAL frames and
    /// snapshot files against torn writes and bit flips.
    pub fn crc32(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    /// Append a `u8`.
    pub fn put_u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its exact bit pattern.
    pub fn put_f32(out: &mut Vec<u8>, v: f32) {
        put_u32(out, v.to_bits());
    }

    /// Bounds-checked cursor over a byte buffer. Every read returns `None`
    /// past the end instead of panicking, so corrupt or truncated input
    /// degrades into a structured decode failure.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Start reading at the beginning of `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            Self { buf, pos: 0 }
        }

        /// Take the next `n` raw bytes.
        pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
            let end = self.pos.checked_add(n)?;
            let slice = self.buf.get(self.pos..end)?;
            self.pos = end;
            Some(slice)
        }

        /// Read a `u8`.
        pub fn u8(&mut self) -> Option<u8> {
            self.bytes(1).map(|b| b[0])
        }

        /// Read a little-endian `u32`.
        pub fn u32(&mut self) -> Option<u32> {
            self.bytes(4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        }

        /// Read a little-endian `u64`.
        pub fn u64(&mut self) -> Option<u64> {
            self.bytes(8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        }

        /// Read an `f32` bit pattern.
        pub fn f32(&mut self) -> Option<f32> {
            self.u32().map(f32::from_bits)
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// `true` when every byte has been consumed.
        pub fn is_empty(&self) -> bool {
            self.remaining() == 0
        }
    }

    fn encode_adjacency(out: &mut Vec<u8>, adj: &Adjacency) {
        put_u64(out, adj.num_edges() as u64);
        for &off in adj.offsets() {
            put_u64(out, off as u64);
        }
        for &t in adj.raw_targets() {
            put_u32(out, t);
        }
        for &w in adj.raw_weights() {
            put_f32(out, w);
        }
    }

    fn decode_adjacency(r: &mut Reader<'_>, num_vertices: usize) -> Option<Adjacency> {
        let num_edges = r.u64()?;
        let num_edges = usize::try_from(num_edges).ok()?;
        // Refuse to allocate more than the buffer could possibly hold — a
        // corrupt length must fail cleanly, not drive a huge allocation.
        if num_edges > r.remaining() / 4 {
            return None;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut prev = 0usize;
        for i in 0..=num_vertices {
            let off = usize::try_from(r.u64()?).ok()?;
            if off < prev || off > num_edges || (i == 0 && off != 0) {
                return None;
            }
            prev = off;
            offsets.push(off);
        }
        if *offsets.last()? != num_edges {
            return None;
        }
        let mut targets = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            let t = r.u32()?;
            if t as usize >= num_vertices {
                return None;
            }
            targets.push(t as VertexId);
        }
        let mut weights = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            weights.push(r.f32()? as EdgeWeight);
        }
        Some(Adjacency::from_raw(offsets, targets, weights))
    }

    /// Append the exact physical encoding of `graph` (vertex count plus the
    /// raw arrays of both adjacency directions).
    pub fn encode_graph(out: &mut Vec<u8>, graph: &Graph) {
        put_u64(out, graph.num_vertices() as u64);
        encode_adjacency(out, graph.out_adjacency());
        encode_adjacency(out, graph.in_adjacency());
    }

    /// Decode a graph previously written by [`encode_graph`], validating the
    /// structure (monotone offsets, in-range neighbor ids, matching edge
    /// counts in both directions). Returns `None` on any inconsistency.
    pub fn decode_graph(r: &mut Reader<'_>) -> Option<Graph> {
        let n = usize::try_from(r.u64()?).ok()?;
        // An adjacency stores n+1 offsets of 8 bytes each per direction.
        if n > r.remaining() / 16 {
            return None;
        }
        let out = decode_adjacency(r, n)?;
        let incoming = decode_adjacency(r, n)?;
        if out.num_edges() != incoming.num_edges() {
            return None;
        }
        Some(Graph::from_parts(n, out, incoming))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_unweighted_and_weighted_lines() {
        let input = "# comment\n0 1\n1 2 3.5\n\n% another comment\n2 0 1\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_weights(1), &[3.5]);
        assert_eq!(g.out_weights(0), &[1.0]);
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let input = "0 1\nnot an edge\n";
        let err = read_edge_list(Cursor::new(input)).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_trailing_tokens() {
        let input = "0 1 2.0 junk\n";
        assert!(read_edge_list(Cursor::new(input)).is_err());
    }

    #[test]
    fn round_trips_through_text() {
        let g = crate::generators::rmat(32, 100, 0.57, 0.19, 0.19, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        // The header declares the vertex count, so even trailing isolated
        // vertices are reconstructed exactly.
        assert_eq!(g2.num_vertices(), g.num_vertices());
        for v in g2.vertices() {
            assert_eq!(g.out_neighbors(v), g2.out_neighbors(v));
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("slfe_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.el");
        let g = crate::generators::path(6);
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn id_past_the_declared_vertex_count_is_a_structured_error() {
        let input = "# slfe edge list: 4 vertices, 2 edges\n0 1\n2 9 1.5\n";
        match read_edge_list(Cursor::new(input)).unwrap_err() {
            LoadError::IdOutOfRange { line, id, limit } => {
                assert_eq!(line, 3);
                assert_eq!(id, 9);
                assert_eq!(limit, 4);
            }
            other => panic!("expected IdOutOfRange, got {other}"),
        }
        // The source id is checked too.
        let input = "# slfe edge list: 4 vertices, 1 edges\n7 0\n";
        match read_edge_list(Cursor::new(input)).unwrap_err() {
            LoadError::IdOutOfRange { line, id, .. } => {
                assert_eq!((line, id), (2, 7));
            }
            other => panic!("expected IdOutOfRange, got {other}"),
        }
    }

    #[test]
    fn ids_outside_the_u32_id_space_are_rejected_not_truncated() {
        // u32::MAX is the INVALID_VERTEX sentinel; anything at or above it
        // must fail loudly with the offending id, not wrap or vanish.
        for bad in [u32::MAX as u64, u32::MAX as u64 + 1, 99_999_999_999] {
            let input = format!("0 1\n1 {bad}\n");
            match read_edge_list(Cursor::new(input)).unwrap_err() {
                LoadError::IdOutOfRange { line, id, limit } => {
                    assert_eq!(line, 2);
                    assert_eq!(id, bad);
                    assert_eq!(limit, u32::MAX as u64);
                }
                other => panic!("expected IdOutOfRange for {bad}, got {other}"),
            }
        }
    }

    #[test]
    fn declared_vertex_count_preserves_isolated_trailing_vertices() {
        let g = crate::generators::path(4); // 4 vertices, 3 edges
        let mut buf = Vec::new();
        writeln!(
            buf,
            "# slfe edge list: 10 vertices, {} edges",
            g.num_edges()
        )
        .unwrap();
        for v in g.vertices() {
            for (u, w) in g.out_edges(v) {
                writeln!(buf, "{v} {u} {w}").unwrap();
            }
        }
        let loaded = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(loaded.num_vertices(), 10);
        assert_eq!(loaded.num_edges(), 3);
        assert_eq!(loaded.out_degree(9), 0);
    }

    #[test]
    fn oversized_declared_counts_do_not_reopen_the_wrapping_cast() {
        // A header claiming more vertices than the u32 id space holds is
        // rejected at the header line — its huge ids must never reach the
        // (wrapping) `as VertexId` cast, nor drive a giant allocation.
        let input = "# slfe edge list: 6000000000 vertices, 1 edges\n4294967296 1\n";
        match read_edge_list(Cursor::new(input)).unwrap_err() {
            LoadError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected Parse at the header, got {other}"),
        }
    }

    #[test]
    fn foreign_comments_do_not_declare_a_vertex_count() {
        let input = "# 2 vertices of interest\n0 5\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard check vector for CRC32/IEEE.
        assert_eq!(binary::crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(binary::crc32(b""), 0);
    }

    #[test]
    fn binary_reader_is_bounds_checked() {
        let mut buf = Vec::new();
        binary::put_u32(&mut buf, 7);
        binary::put_u64(&mut buf, u64::MAX);
        binary::put_f32(&mut buf, -0.0);
        let mut r = binary::Reader::new(&buf);
        assert_eq!(r.u32(), Some(7));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.f32().map(f32::to_bits), Some((-0.0f32).to_bits()));
        assert!(r.is_empty());
        assert_eq!(r.u8(), None, "reading past the end yields None, not panic");
    }

    #[test]
    fn graph_binary_round_trip_is_physically_exact() {
        // Duplicate (src, dst) pairs with distinct weights pin physical-order
        // preservation: an edge-list rebuild may reorder them, the raw-array
        // codec must not.
        let mut g = crate::Graph::from_edges(
            4,
            vec![
                crate::types::Edge::new(0, 1, 2.0),
                crate::types::Edge::new(0, 1, 1.0),
                crate::types::Edge::new(2, 3, 5.5),
            ],
        );
        // Exercise a patched (post-batch) graph too.
        let mut batch = crate::UpdateBatch::new();
        batch.insert(3, 7, 9.25).delete(2, 3);
        (g, _) = g.apply_batch(&batch);

        let mut buf = Vec::new();
        binary::encode_graph(&mut buf, &g);
        let mut r = binary::Reader::new(&buf);
        let g2 = binary::decode_graph(&mut r).expect("decodes");
        assert!(r.is_empty());
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.out_adjacency(), g.out_adjacency());
        assert_eq!(g2.in_adjacency(), g.in_adjacency());
    }

    #[test]
    fn corrupt_graph_bytes_decode_to_none_not_panic() {
        let g = crate::generators::rmat(64, 300, 0.57, 0.19, 0.19, 3);
        let mut buf = Vec::new();
        binary::encode_graph(&mut buf, &g);
        // Truncations at every prefix length must fail cleanly.
        for cut in [0, 1, 7, 8, 9, buf.len() / 2, buf.len() - 1] {
            let mut r = binary::Reader::new(&buf[..cut]);
            assert!(binary::decode_graph(&mut r).is_none(), "cut at {cut}");
        }
        // A flipped byte either fails validation or still decodes into a
        // structurally valid graph (weight bytes carry no structure) — the
        // contract under corruption is "no panic", checksums above this
        // layer decide acceptance.
        for i in 0..buf.len().min(256) {
            let mut bad = buf.clone();
            bad[i] ^= 0xA5;
            let mut r = binary::Reader::new(&bad);
            let _ = binary::decode_graph(&mut r);
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_edge_list("/definitely/not/here.el").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }

    fn assert_graphs_equal(a: &crate::Graph, b: &crate::Graph) {
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices().filter(|&v| (v as usize) < b.num_vertices()) {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "out list of {v}");
            assert_eq!(a.out_weights(v), b.out_weights(v), "weights of {v}");
        }
    }

    #[test]
    fn comments_blank_lines_and_whitespace_are_skipped() {
        let input = "\n   \n# leading comment\n  0 1  \n\t1 2\t3.5\n% percent comment\n\n2 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_weights(1), &[3.5]);
    }

    #[test]
    fn self_loops_survive_a_round_trip() {
        let input = "0 0 2.5\n0 1\n1 1\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 0));
        assert_eq!(g.in_neighbors(1), &[0, 1]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_graphs_equal(&g, &g2);
        assert!(g2.has_edge(0, 0));
        assert_eq!(g2.out_weights(0), &[2.5, 1.0]);
    }

    #[test]
    fn duplicate_edges_survive_a_round_trip() {
        // The format does not deduplicate: multigraph inputs stay multigraphs.
        let input = "0 1 1.0\n0 1 2.0\n0 1 1.0\n1 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 1, 1]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_graphs_equal(&g, &g2);
        assert_eq!(g2.out_weights(0), &[1.0, 2.0, 1.0]);
    }

    #[test]
    fn load_save_load_is_a_fixpoint_on_disk() {
        let dir =
            std::env::temp_dir().join(format!("slfe_graph_io_roundtrip_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let first = dir.join("first.el");
        let second = dir.join("second.el");
        let g = crate::generators::rmat(64, 400, 0.57, 0.19, 0.19, 9);

        save_edge_list(&g, &first).unwrap();
        let g1 = load_edge_list(&first).unwrap();
        save_edge_list(&g1, &second).unwrap();
        let g2 = load_edge_list(&second).unwrap();

        assert_graphs_equal(&g, &g1);
        assert_graphs_equal(&g1, &g2);
        // The header's declared vertex count makes load-save-load a byte-level
        // fixpoint from the very first save, isolated trailing vertices included.
        assert_eq!(g1.num_vertices(), g.num_vertices());
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(
            std::fs::read_to_string(&first).unwrap(),
            std::fs::read_to_string(&second).unwrap()
        );
        std::fs::remove_file(&first).ok();
        std::fs::remove_file(&second).ok();
    }
}
