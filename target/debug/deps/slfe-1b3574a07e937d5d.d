/root/repo/target/debug/deps/slfe-1b3574a07e937d5d.d: src/lib.rs

/root/repo/target/debug/deps/libslfe-1b3574a07e937d5d.rlib: src/lib.rs

/root/repo/target/debug/deps/libslfe-1b3574a07e937d5d.rmeta: src/lib.rs

src/lib.rs:
