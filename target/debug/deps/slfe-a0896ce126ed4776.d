/root/repo/target/debug/deps/slfe-a0896ce126ed4776.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libslfe-a0896ce126ed4776.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
