//! # slfe-cluster
//!
//! The simulated distributed runtime underneath every engine in the workspace.
//!
//! The paper runs on an 8-node InfiniBand cluster and exchanges vertex updates over
//! MPI. That hardware is replaced here by an in-process model that preserves what
//! the evaluation actually measures:
//!
//! * [`config`] — [`ClusterConfig`]: number of logical nodes, workers per node and
//!   the communication cost model used to convert counted messages into simulated
//!   network seconds.
//! * [`comm`] — per node-pair message accounting ([`CommTracker`]) plus the
//!   [`CommCostModel`] (per-message latency + per-byte cost, loosely calibrated to
//!   a 100 Gb/s InfiniBand link as used in the paper's testbed).
//! * [`stealing`] — the 256-vertex mini-chunk work-stealing scheduler of §3.6, with
//!   a deterministic simulated mode (used by the experiments for reproducible
//!   imbalance/scalability numbers) and a threaded mode (real worker threads
//!   claiming chunks from an atomic cursor).
//! * [`pool`] — [`WorkerPool`]: the persistent, machine-spanning worker pool
//!   behind every threaded path. Threads are spawned once per engine and parked
//!   between phases; each phase is one publish → execute → barrier round of the
//!   pool's phase-barrier protocol.
//! * [`layout`] — [`GlobalChunkLayout`]: degree-aware work units for the
//!   cross-node executor. Hub-heavy chunks are split, and chunks are ordered
//!   descending by estimated work so stealing drains the tail first.
//! * [`cluster`] — [`Cluster`]: a partitioned view of a graph across nodes with
//!   helpers every engine shares (ownership tests, per-node vertex ranges, per-node
//!   work accounting).

pub mod cluster;
pub mod comm;
pub mod config;
pub mod layout;
pub mod pool;
pub mod stealing;

pub use cluster::Cluster;
pub use comm::{CommCostModel, CommStats, CommTracker};
pub use config::ClusterConfig;
pub use layout::{GlobalChunkLayout, LayoutPatchStats, WorkChunk};
pub use pool::{PoolActivity, WorkerPool};
pub use stealing::{ChunkScheduler, ScheduleOutcome, SchedulingPolicy, DEFAULT_CHUNK_SIZE};
