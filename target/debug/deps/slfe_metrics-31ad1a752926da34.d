/root/repo/target/debug/deps/slfe_metrics-31ad1a752926da34.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

/root/repo/target/debug/deps/libslfe_metrics-31ad1a752926da34.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/imbalance.rs:
crates/metrics/src/report.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/trace.rs:
