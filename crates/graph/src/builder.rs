//! Mutable edge-list accumulator producing an immutable [`Graph`].

use crate::graph::Graph;
use crate::types::{Edge, EdgeWeight, VertexId};

/// Accumulates edges and produces a [`Graph`].
///
/// The builder tracks the maximum vertex id seen so callers do not need to declare
/// the vertex count up front, although [`GraphBuilder::with_vertices`] can reserve a
/// minimum count (useful when the tail of the id space is made of isolated vertices).
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    min_vertices: usize,
    dedup: bool,
    drop_self_loops: bool,
    symmetric: bool,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Guarantee that the built graph has at least `n` vertices even if the edge
    /// list does not reference the tail of the id space.
    pub fn with_vertices(mut self, n: usize) -> Self {
        self.min_vertices = n;
        self
    }

    /// Remove duplicate `(src, dst)` pairs, keeping the smallest weight.
    pub fn deduplicate(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Drop self loops (`src == dst`).
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// For every inserted edge also insert the reverse edge, producing a symmetric
    /// (undirected-as-directed) graph. Connected Components in the paper treats
    /// graphs as undirected, so the CC proxies are built this way.
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Add a weighted edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, weight: EdgeWeight) -> &mut Self {
        self.edges.push(Edge::new(src, dst, weight));
        self
    }

    /// Add an unweighted (weight 1.0) edge.
    pub fn add_unweighted(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.add_edge(src, dst, 1.0)
    }

    /// Add many edges from an iterator of `(src, dst, weight)` triples.
    pub fn extend_weighted(
        &mut self,
        iter: impl IntoIterator<Item = (VertexId, VertexId, EdgeWeight)>,
    ) -> &mut Self {
        self.edges
            .extend(iter.into_iter().map(|(s, d, w)| Edge::new(s, d, w)));
        self
    }

    /// Add many edges from an iterator of `(src, dst)` pairs with weight 1.0.
    pub fn extend_unweighted(
        &mut self,
        iter: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> &mut Self {
        self.edges
            .extend(iter.into_iter().map(|(s, d)| Edge::unweighted(s, d)));
        self
    }

    /// Number of edges currently buffered (before symmetrisation / dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if no edges have been added yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalize into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let mut edges = self.edges;
        // The vertex-id space is determined by every edge *mentioned*, even ones that
        // later filters (self-loop removal, dedup) drop: a vertex with only a self
        // loop is still a vertex of the graph.
        let max_id = edges
            .iter()
            .map(|e| e.src.max(e.dst) as usize + 1)
            .max()
            .unwrap_or(0);
        if self.symmetric {
            let reversed: Vec<Edge> = edges.iter().map(|e| e.reversed()).collect();
            edges.extend(reversed);
        }
        if self.drop_self_loops {
            edges.retain(|e| e.src != e.dst);
        }
        if self.dedup {
            edges.sort_unstable_by(|a, b| {
                (a.src, a.dst).cmp(&(b.src, b.dst)).then(
                    a.weight
                        .partial_cmp(&b.weight)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            });
            edges.dedup_by(|a, b| a.src == b.src && a.dst == b.dst);
        }
        let num_vertices = max_id.max(self.min_vertices);
        Graph::from_edges(num_vertices, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_graph_with_inferred_vertex_count() {
        let mut b = GraphBuilder::new();
        b.add_unweighted(0, 5).add_unweighted(2, 3);
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn with_vertices_extends_id_space() {
        let mut b = GraphBuilder::new().with_vertices(100);
        b.add_unweighted(0, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 100);
    }

    #[test]
    fn dedup_keeps_minimum_weight() {
        let mut b = GraphBuilder::new().deduplicate(true);
        b.add_edge(0, 1, 5.0)
            .add_edge(0, 1, 2.0)
            .add_edge(0, 1, 9.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_weights(0), &[2.0]);
    }

    #[test]
    fn self_loops_are_dropped_when_requested() {
        let mut b = GraphBuilder::new().drop_self_loops(true);
        b.add_unweighted(3, 3).add_unweighted(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        // Vertex 3 stays part of the graph even though its only (self-loop) edge
        // was dropped.
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn symmetric_builder_mirrors_every_edge() {
        let mut b = GraphBuilder::new().symmetric(true);
        b.add_unweighted(0, 1).add_unweighted(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
    }

    #[test]
    fn empty_builder_produces_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn extend_helpers_add_all_edges() {
        let mut b = GraphBuilder::new();
        b.extend_unweighted([(0, 1), (1, 2)]);
        b.extend_weighted([(2, 3, 4.0)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_weights(2), &[4.0]);
    }
}
