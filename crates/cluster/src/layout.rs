//! Degree-aware global chunk layout: the work units of the cross-node executor.
//!
//! PR 1 cut every node's owned-vertex list into fixed 256-vertex mini-chunks and
//! ran one node at a time. Two sources of tail latency survived that design:
//!
//! * **Hub chunks.** Chunking partitioners put consecutive vertex ids together,
//!   so a chunk containing a power-law hub can carry orders of magnitude more
//!   edge work than its neighbors. Whichever worker draws it last dominates the
//!   phase makespan.
//! * **Discovery order.** Chunks were claimed in vertex order, so a hub chunk
//!   sitting at the end of the id range *started* last — the worst possible
//!   moment under work stealing.
//!
//! [`GlobalChunkLayout`] fixes both, Gemini-style (chunk-based secondary
//! partitioning): chunks whose **estimated work** (`1 + in_degree + out_degree`
//! per vertex) exceeds a per-node budget are split — a mega-hub gets a chunk of
//! its own — and the final chunk list is ordered **descending by estimate**, so
//! stealing drains the expensive tail first and the cheap chunks level the load
//! at the end. The layout spans *all* nodes: one phase hands every node's
//! chunks to one global worker pool, which is what lets `total_workers` threads
//! stay busy instead of `workers_per_node`.
//!
//! Since PR 4 every chunk also carries two **vertex-id spans** for the engine's
//! chunk-level activity summaries: the span of the chunk's own vertices (a
//! word-range popcount over the frontier tells whether any *source* in the
//! chunk is active, letting push phases skip the chunk outright) and the span
//! of the chunk's in-neighbors (whether any value a *destination* in the chunk
//! gathers could have changed, letting pull phases skip caught-up chunks). The
//! spans are conservative on non-contiguous partitionings — a foreign active
//! vertex inside the span merely prevents a skip, never causes one.
//!
//! The layout is pure bookkeeping — every owned vertex appears in exactly one
//! chunk (the property tests pin this), so execution results are unaffected;
//! only the claim order and the work-per-claim distribution change. And because
//! per-vertex estimates only move where a graph mutation changed a degree,
//! [`GlobalChunkLayout::patched`] rebuilds just the dirty nodes' chunk lists
//! after an edge batch instead of re-deriving the whole layout.

use crate::stealing::{ScheduleOutcome, SchedulingPolicy};
use slfe_graph::{Graph, VertexId};

/// Split threshold: a chunk is closed early once its estimate reaches
/// `SPLIT_FACTOR ×` the node's average per-base-chunk estimate.
const SPLIT_FACTOR: u64 = 2;

/// One schedulable unit: a contiguous slice of a node's owned-vertex list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkChunk {
    /// The simulated node owning every vertex of this chunk.
    pub node: usize,
    /// Start index (inclusive) into `Cluster::vertices_of(node)`.
    pub start: usize,
    /// End index (exclusive) into `Cluster::vertices_of(node)`.
    pub end: usize,
    /// Estimated work: `Σ (1 + in_degree + out_degree)` over the slice.
    pub estimate: u64,
    /// Half-open vertex-id span `[span_start, span_end)` covering the chunk's
    /// own vertices (owned lists are ascending, so this is
    /// `owned[start]..owned[end-1]+1`). Frontier popcounts over this span
    /// bound the chunk's active-source count from above.
    pub span_start: VertexId,
    /// End (exclusive) of the own-vertex id span.
    pub span_end: VertexId,
    /// Half-open vertex-id span covering every in-neighbor of the chunk's
    /// vertices; `in_start >= in_end` encodes "no in-edges at all". A frontier
    /// with no bit in this span cannot change anything this chunk gathers.
    pub in_start: VertexId,
    /// End (exclusive) of the in-neighbor id span.
    pub in_end: VertexId,
}

impl WorkChunk {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the chunk covers no vertices (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` when no vertex of this chunk has an incoming edge.
    pub fn has_no_in_edges(&self) -> bool {
        self.in_start >= self.in_end
    }
}

/// What [`GlobalChunkLayout::patched`] actually did — the proof that applying
/// an update batch no longer pays an O(V+E) layout rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutPatchStats {
    /// Nodes whose chunk lists were re-derived (dirty-endpoint owners).
    pub nodes_rebuilt: usize,
    /// Owned vertices scanned while re-deriving those lists — the patch's work
    /// bound, compared to `|V| + |E|` for a from-scratch build.
    pub vertices_scanned: usize,
    /// Chunks copied verbatim from the previous layout.
    pub chunks_reused: usize,
}

/// The degree-aware, cluster-wide chunk layout of one graph version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalChunkLayout {
    /// All chunks in execution order: descending estimate, ties by (node, start).
    chunks: Vec<WorkChunk>,
    /// Per node: indices into `chunks`, in execution order.
    per_node: Vec<Vec<usize>>,
}

/// Cut one node's owned-vertex list into degree-aware chunks and append them to
/// `out`. Shared verbatim by [`GlobalChunkLayout::build`] and
/// [`GlobalChunkLayout::patched`] — byte-identical chunk lists are what make a
/// patched layout `==` the from-scratch one.
fn push_node_chunks(
    graph: &Graph,
    node: usize,
    owned: &[VertexId],
    chunk_size: usize,
    out: &mut Vec<WorkChunk>,
) {
    if owned.is_empty() {
        return;
    }
    let estimate = |v: VertexId| 1 + graph.in_degree(v) as u64 + graph.out_degree(v) as u64;
    // Budget: an even estimate share per base chunk, times the split
    // factor. A chunk that would exceed it is cut early; a single hub
    // larger than the whole budget becomes a one-vertex chunk.
    let total: u64 = owned.iter().map(|&v| estimate(v)).sum();
    let base_chunks = owned.len().div_ceil(chunk_size) as u64;
    let budget = (SPLIT_FACTOR * total.div_ceil(base_chunks)).max(1);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut in_start = VertexId::MAX;
    let mut in_end = 0 as VertexId;
    for (idx, &v) in owned.iter().enumerate() {
        acc += estimate(v);
        for &u in graph.in_neighbors(v) {
            in_start = in_start.min(u);
            in_end = in_end.max(u + 1);
        }
        let len = idx + 1 - start;
        if len == chunk_size || acc >= budget || idx + 1 == owned.len() {
            out.push(WorkChunk {
                node,
                start,
                end: idx + 1,
                estimate: acc,
                span_start: owned[start],
                span_end: owned[idx] + 1,
                in_start: if in_start < in_end { in_start } else { 0 },
                in_end: if in_start < in_end { in_end } else { 0 },
            });
            start = idx + 1;
            acc = 0;
            in_start = VertexId::MAX;
            in_end = 0;
        }
    }
}

/// Descending estimate: stealing claims the heavy tail first. The tie break
/// keeps the order (and therefore the whole layout) deterministic.
fn sort_chunks(chunks: &mut [WorkChunk]) {
    chunks.sort_by(|a, b| {
        b.estimate
            .cmp(&a.estimate)
            .then(a.node.cmp(&b.node))
            .then(a.start.cmp(&b.start))
    });
}

impl GlobalChunkLayout {
    /// Build the layout for `owned_per_node[node]` (each node's owned vertices,
    /// as [`crate::Cluster::vertices_of`] provides them) over `graph`, with
    /// `chunk_size` as the base mini-chunk granularity.
    pub fn build(graph: &Graph, owned_per_node: &[&[VertexId]], chunk_size: usize) -> Self {
        assert!(chunk_size >= 1, "chunk size must be positive");
        let mut chunks = Vec::new();
        for (node, owned) in owned_per_node.iter().enumerate() {
            push_node_chunks(graph, node, owned, chunk_size, &mut chunks);
        }
        sort_chunks(&mut chunks);
        let mut per_node = vec![Vec::new(); owned_per_node.len()];
        for (i, chunk) in chunks.iter().enumerate() {
            per_node[chunk.node].push(i);
        }
        Self { chunks, per_node }
    }

    /// Re-derive this layout after a graph mutation whose changed degrees are
    /// confined to `touched[node]` nodes: touched nodes' chunk lists are
    /// rebuilt from their (possibly grown) owned lists, untouched nodes' chunks
    /// are copied verbatim, and only the global claim order is re-sorted —
    /// `O(Σ touched |owned| + touched edges + C log C)` instead of `O(V + E)`.
    ///
    /// The caller guarantees that every vertex whose in- or out-degree changed
    /// (a dirty batch endpoint) — and every appended vertex — is owned by a
    /// touched node, and that untouched nodes' owned lists are unchanged.
    /// Under that contract the result is `==` to a from-scratch
    /// [`GlobalChunkLayout::build`] on the new graph (property-tested).
    pub fn patched(
        &self,
        graph: &Graph,
        owned_per_node: &[&[VertexId]],
        chunk_size: usize,
        touched: &[bool],
    ) -> (Self, LayoutPatchStats) {
        assert!(chunk_size >= 1, "chunk size must be positive");
        assert_eq!(
            owned_per_node.len(),
            self.per_node.len(),
            "patching cannot change the node count"
        );
        assert_eq!(
            touched.len(),
            self.per_node.len(),
            "one touched flag per node"
        );
        let mut stats = LayoutPatchStats::default();
        let mut chunks = Vec::with_capacity(self.chunks.len());
        for (node, owned) in owned_per_node.iter().enumerate() {
            if touched[node] {
                stats.nodes_rebuilt += 1;
                stats.vertices_scanned += owned.len();
                push_node_chunks(graph, node, owned, chunk_size, &mut chunks);
            } else {
                stats.chunks_reused += self.per_node[node].len();
                chunks.extend(self.per_node[node].iter().map(|&i| self.chunks[i].clone()));
            }
        }
        sort_chunks(&mut chunks);
        let mut per_node = vec![Vec::new(); owned_per_node.len()];
        for (i, chunk) in chunks.iter().enumerate() {
            per_node[chunk.node].push(i);
        }
        (Self { chunks, per_node }, stats)
    }

    /// All chunks, in execution (claim) order.
    pub fn chunks(&self) -> &[WorkChunk] {
        &self.chunks
    }

    /// Indices into [`GlobalChunkLayout::chunks`] belonging to `node`, in
    /// execution order.
    pub fn node_chunks(&self, node: usize) -> &[usize] {
        &self.per_node[node]
    }

    /// Number of simulated nodes the layout spans.
    pub fn num_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Deterministically assign `node`'s chunks (costed by
    /// `cost(chunk_index)`, typically the measured per-chunk work of the phase
    /// just executed) to `workers` simulated workers under `policy`:
    ///
    /// * [`SchedulingPolicy::WorkStealing`] — greedy least-loaded in execution
    ///   order, what chunk-grained stealing converges to; with the
    ///   descending-estimate order this is classic LPT scheduling.
    /// * [`SchedulingPolicy::StaticBlocks`] — contiguous equal-count blocks of
    ///   the node's chunk list, the "w/o Stealing" baseline of Figure 10(a).
    ///
    /// This is the simulated-cluster view: each *node* still only has
    /// `workers_per_node` workers, no matter how many global threads physically
    /// ran the chunks. Zero-cost chunks (including ones the activity summaries
    /// skipped) never touch a simulated worker.
    pub fn simulate_node(
        &self,
        node: usize,
        workers: usize,
        policy: SchedulingPolicy,
        mut cost: impl FnMut(usize) -> u64,
    ) -> ScheduleOutcome {
        assert!(workers >= 1, "need at least one worker");
        let mut per_worker = vec![0u64; workers];
        let mut total = 0u64;
        let node_chunks = &self.per_node[node];
        for (pos, &chunk) in node_chunks.iter().enumerate() {
            let c = cost(chunk);
            if c == 0 {
                continue;
            }
            total += c;
            let idx = match policy {
                SchedulingPolicy::WorkStealing => {
                    per_worker
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, &w)| (w, *i))
                        .expect("at least one worker")
                        .0
                }
                SchedulingPolicy::StaticBlocks => pos * workers / node_chunks.len(),
            };
            per_worker[idx] += c;
        }
        ScheduleOutcome {
            per_worker_work: per_worker,
            total_work: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::{generators, UpdateBatch};

    fn owned_split(n: usize, nodes: usize) -> Vec<Vec<VertexId>> {
        // Contiguous shares, like the chunking partitioner produces.
        let per = n.div_ceil(nodes);
        (0..nodes)
            .map(|k| ((k * per) as u32..(((k + 1) * per).min(n)) as u32).collect())
            .collect()
    }

    fn as_refs(owned: &[Vec<VertexId>]) -> Vec<&[VertexId]> {
        owned.iter().map(|o| o.as_slice()).collect()
    }

    #[test]
    fn chunks_cover_every_owned_vertex_exactly_once() {
        let g = generators::rmat(3000, 24000, 0.57, 0.19, 0.19, 77);
        let owned = owned_split(g.num_vertices(), 3);
        let layout = GlobalChunkLayout::build(&g, &as_refs(&owned), 256);
        let mut covered = vec![0usize; g.num_vertices()];
        for chunk in layout.chunks() {
            assert!(!chunk.is_empty());
            for idx in chunk.start..chunk.end {
                covered[owned[chunk.node][idx] as usize] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "each vertex exactly once");
    }

    #[test]
    fn chunks_are_ordered_descending_by_estimate() {
        let g = generators::rmat(2000, 30000, 0.57, 0.19, 0.19, 5);
        let owned = owned_split(g.num_vertices(), 2);
        let layout = GlobalChunkLayout::build(&g, &as_refs(&owned), 128);
        for pair in layout.chunks().windows(2) {
            assert!(pair[0].estimate >= pair[1].estimate);
        }
    }

    #[test]
    fn hub_heavy_chunks_are_split() {
        // A star: vertex 0 has degree n-1, everyone else degree 1. With the
        // budget rule the hub must sit in a chunk much smaller than chunk_size.
        let n = 2048;
        let edges: Vec<(u32, u32, f32)> = (1..n).map(|v| (0u32, v as u32, 1.0)).collect();
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_weighted(edges);
        let g = b.build();
        let owned: Vec<VertexId> = (0..n as u32).collect();
        let layout = GlobalChunkLayout::build(&g, &[&owned], 256);
        let hub_chunk = layout
            .chunks()
            .iter()
            .find(|c| (c.start..c.end).contains(&0))
            .unwrap();
        assert!(
            hub_chunk.len() < 256,
            "hub chunk of {} vertices was not split",
            hub_chunk.len()
        );
        // And the hub chunk is claimed first.
        assert_eq!(layout.chunks()[0], *hub_chunk);
    }

    #[test]
    fn node_chunk_indices_partition_the_chunk_list() {
        let g = generators::rmat(1000, 8000, 0.57, 0.19, 0.19, 9);
        let owned = owned_split(g.num_vertices(), 4);
        let layout = GlobalChunkLayout::build(&g, &as_refs(&owned), 64);
        let mut seen = vec![false; layout.chunks().len()];
        for node in 0..layout.num_nodes() {
            for &i in layout.node_chunks(node) {
                assert_eq!(layout.chunks()[i].node, node);
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn spans_cover_own_vertices_and_in_neighbors() {
        let g = generators::rmat(1200, 9000, 0.57, 0.19, 0.19, 51);
        let owned = owned_split(g.num_vertices(), 3);
        let layout = GlobalChunkLayout::build(&g, &as_refs(&owned), 64);
        for chunk in layout.chunks() {
            for &v in &owned[chunk.node][chunk.start..chunk.end] {
                assert!(
                    chunk.span_start <= v && v < chunk.span_end,
                    "own span misses vertex {v}"
                );
                for &u in g.in_neighbors(v) {
                    assert!(!chunk.has_no_in_edges());
                    assert!(
                        chunk.in_start <= u && u < chunk.in_end,
                        "in-span misses in-neighbor {u} of {v}"
                    );
                }
            }
        }
        // A chunk with no in-edges anywhere reports it.
        let path = generators::path(4);
        let roots: Vec<VertexId> = vec![0];
        let rest: Vec<VertexId> = vec![1, 2, 3];
        let l = GlobalChunkLayout::build(&path, &[&roots, &rest], 8);
        let root_chunk = l.chunks().iter().find(|c| c.node == 0).unwrap();
        assert!(root_chunk.has_no_in_edges());
    }

    #[test]
    fn simulate_node_conserves_work_and_bounds_makespan() {
        let g = generators::rmat(1500, 12000, 0.57, 0.19, 0.19, 13);
        let owned = owned_split(g.num_vertices(), 2);
        let layout = GlobalChunkLayout::build(&g, &as_refs(&owned), 64);
        for node in 0..2 {
            let outcome = layout.simulate_node(node, 4, SchedulingPolicy::WorkStealing, |c| {
                layout.chunks()[c].estimate
            });
            let expected: u64 = layout
                .node_chunks(node)
                .iter()
                .map(|&c| layout.chunks()[c].estimate)
                .sum();
            assert_eq!(outcome.total_work, expected);
            let max_chunk = layout
                .node_chunks(node)
                .iter()
                .map(|&c| layout.chunks()[c].estimate)
                .max()
                .unwrap_or(0);
            assert!(outcome.makespan() <= expected / 4 + max_chunk);
        }
    }

    #[test]
    fn empty_nodes_get_no_chunks() {
        let g = generators::path(10);
        let owned: Vec<VertexId> = (0..10).collect();
        let layout = GlobalChunkLayout::build(&g, &[&owned, &[]], 4);
        assert_eq!(layout.node_chunks(1), &[] as &[usize]);
        assert!(layout.chunks().iter().all(|c| c.node == 0));
        let sim = layout.simulate_node(1, 3, SchedulingPolicy::WorkStealing, |_| 1);
        assert_eq!(sim.total_work, 0);
    }

    /// Seeded-loop property test: over random graphs, random edge batches and
    /// several topologies, patching the dirty-endpoint nodes must reproduce the
    /// from-scratch layout exactly, while scanning only the touched nodes.
    #[test]
    fn patched_layout_equals_from_scratch_on_random_batches() {
        for seed in 0..6u64 {
            let g = generators::rmat(900, 6300, 0.57, 0.19, 0.19, seed + 600);
            let nodes = 2 + (seed as usize % 3);
            let mut rng = slfe_graph::rng::SplitMix64::seed_from_u64(seed * 31 + 7);
            let mut batch = UpdateBatch::new();
            let n = g.num_vertices() as u32;
            for _ in 0..1 + (seed as usize % 20) {
                let src = rng.range_u32(0, n);
                if rng.next_f64() < 0.7 {
                    // Occasionally grow the id space.
                    let hi = if rng.next_f64() < 0.2 { n + 5 } else { n };
                    batch.insert(src, rng.range_u32(0, hi), 1.0);
                } else if let Some(&dst) = g.out_neighbors(src).first() {
                    batch.delete(src, dst);
                }
            }
            let (mutated, effect) = g.apply_batch(&batch);

            // A stable partitioning across the mutation: the old split, with
            // appended vertices joining the last node.
            let mut owned = owned_split(g.num_vertices(), nodes);
            let old_layout = GlobalChunkLayout::build(&g, &as_refs(&owned), 64);
            for v in g.num_vertices()..mutated.num_vertices() {
                owned[nodes - 1].push(v as VertexId);
            }
            let mut touched = vec![false; nodes];
            if mutated.num_vertices() > g.num_vertices() {
                touched[nodes - 1] = true;
            }
            let owner = |v: VertexId| {
                owned
                    .iter()
                    .position(|o| o.binary_search(&v).is_ok())
                    .expect("every vertex owned")
            };
            for &v in &effect.dirty {
                touched[owner(v)] = true;
            }

            let refs = as_refs(&owned);
            let (patched, stats) = old_layout.patched(&mutated, &refs, 64, &touched);
            let scratch = GlobalChunkLayout::build(&mutated, &refs, 64);
            assert_eq!(patched, scratch, "seed {seed}: patched layout diverges");
            let touched_vertices: usize = owned
                .iter()
                .enumerate()
                .filter(|(k, _)| touched[*k])
                .map(|(_, o)| o.len())
                .sum();
            assert_eq!(stats.vertices_scanned, touched_vertices);
            assert_eq!(stats.nodes_rebuilt, touched.iter().filter(|&&t| t).count());
        }
    }

    #[test]
    fn patching_no_touched_nodes_is_identity_and_free() {
        let g = generators::rmat(600, 4000, 0.57, 0.19, 0.19, 3);
        let owned = owned_split(g.num_vertices(), 4);
        let refs = as_refs(&owned);
        let layout = GlobalChunkLayout::build(&g, &refs, 64);
        let (same, stats) = layout.patched(&g, &refs, 64, &[false; 4]);
        assert_eq!(same, layout);
        assert_eq!(stats.nodes_rebuilt, 0);
        assert_eq!(stats.vertices_scanned, 0);
        assert_eq!(stats.chunks_reused, layout.chunks().len());
    }
}
