//! Regression tests for the persistent worker pool (PR 3).
//!
//! The tentpole claim: one long-lived pool spans the machine, spawned once at
//! engine build, and every phase of every run reuses it. Before PR 3 the
//! executor spawned `O(iterations × phases × workers)` threads per run via
//! `std::thread::scope`; these tests pin the new bound — at most
//! `total_workers` threads, ever, per engine (and per delta server across all
//! of its graph versions).
//!
//! This file is also the CI "pool smoke" stage: run under `--test-threads=1`
//! with 4-worker clusters it exercises the phase-barrier protocol on a single
//! hardware thread, where any wait-loop mistake deadlocks instead of racing.

use slfe::prelude::*;

fn rmat(seed: u64) -> slfe::graph::Graph {
    slfe::graph::generators::rmat(4_000, 28_000, 0.57, 0.19, 0.19, seed)
}

#[test]
fn multi_iteration_run_spawns_at_most_total_workers_threads() {
    let graph = rmat(90);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let cluster = ClusterConfig::new(2, 4);
    let total_workers = cluster.total_workers();
    let engine = SlfeEngine::build(&graph, cluster, EngineConfig::default());

    // Engine build (pool creation + parallel RRG preprocessing) is the only
    // place threads may appear: total_workers - 1, the caller being worker 0.
    assert!(
        engine.pool().threads_spawned() < total_workers as u64,
        "engine spawned {} threads for {total_workers} workers",
        engine.pool().threads_spawned()
    );
    let after_build = engine.pool().threads_spawned();

    let result = engine.run(&slfe::apps::sssp::SsspProgram { root });
    assert!(
        result.stats.iterations >= 5,
        "want a multi-iteration run to exercise many phases, got {}",
        result.stats.iterations
    );
    // The run itself — dozens of pull/push phases — spawned nothing.
    assert_eq!(engine.pool().threads_spawned(), after_build);
    assert_eq!(result.stats.totals.threads_spawned, 0);

    // Reuse across programs on the same engine: still nothing.
    let pr = slfe::apps::pagerank::run(&engine);
    assert_eq!(engine.pool().threads_spawned(), after_build);
    assert_eq!(pr.stats.totals.threads_spawned, 0);
}

#[test]
fn delta_server_reuses_one_pool_across_graph_versions() {
    let graph = rmat(91);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let config = ServerConfig {
        cluster: ClusterConfig::new(2, 2),
        ..ServerConfig::default()
    };
    let total_workers = config.cluster.total_workers() as u64;
    let mut server = DeltaServer::new(
        graph.clone(),
        move |_g: &slfe::graph::Graph| slfe::apps::sssp::SsspProgram { root },
        config,
    );
    let after_startup = server.pool().threads_spawned();
    assert!(after_startup < total_workers);

    // Warm batches rebuild cluster + engine per graph version; the pool must
    // survive all of it without a single extra spawn.
    let mut rng = slfe::graph::rng::SplitMix64::seed_from_u64(17);
    for _ in 0..3 {
        let mut batch = UpdateBatch::new();
        for _ in 0..20 {
            let n = server.graph().num_vertices() as u32;
            batch.insert(
                rng.range_u32(0, n),
                rng.range_u32(0, n),
                rng.range_f32(1.0, 9.0),
            );
        }
        let outcome = server.apply(&batch);
        assert!(outcome.converged);
        assert_eq!(server.pool().threads_spawned(), after_startup);
    }
}

#[test]
fn pool_executor_matches_sequential_results_at_four_workers() {
    // The CI smoke body: with --test-threads=1 this serialises the barrier
    // protocol onto one hardware thread while still using 4-worker clusters.
    let graph = rmat(92);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let sequential = SlfeEngine::build(&graph, ClusterConfig::new(2, 1), EngineConfig::default())
        .run(&slfe::apps::sssp::SsspProgram { root });
    let pooled = SlfeEngine::build(&graph, ClusterConfig::new(2, 4), EngineConfig::default())
        .run(&slfe::apps::sssp::SsspProgram { root });
    assert_eq!(
        sequential.values, pooled.values,
        "pool execution must stay bit-identical to the sequential oracle"
    );
    assert_eq!(sequential.stats.iterations, pooled.stats.iterations);
    // The deterministic simulated schedule admits real cross-node parallelism.
    let total: u64 = pooled.all_worker_work().iter().sum();
    let makespan = pooled.all_worker_work().into_iter().max().unwrap_or(1);
    assert!(
        total as f64 / makespan.max(1) as f64 > 1.5,
        "8 simulated workers should admit >1.5x parallelism"
    );
}
