/root/repo/target/debug/deps/slfe_baselines-ba3d9f81999812fc.d: crates/baselines/src/lib.rs crates/baselines/src/gas.rs crates/baselines/src/gemini.rs crates/baselines/src/graphchi.rs crates/baselines/src/ligra.rs crates/baselines/src/powergraph.rs crates/baselines/src/powerlyra.rs

/root/repo/target/debug/deps/libslfe_baselines-ba3d9f81999812fc.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gas.rs crates/baselines/src/gemini.rs crates/baselines/src/graphchi.rs crates/baselines/src/ligra.rs crates/baselines/src/powergraph.rs crates/baselines/src/powerlyra.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gas.rs:
crates/baselines/src/gemini.rs:
crates/baselines/src/graphchi.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/powergraph.rs:
crates/baselines/src/powerlyra.rs:
