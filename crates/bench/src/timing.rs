//! Minimal wall-clock measurement helpers for the dependency-free benches.
//!
//! The benches under `benches/` are plain `harness = false` programs: they warm
//! up, run a closure a fixed number of times, and report best/mean wall-clock
//! seconds. Best-of-k is the robust statistic on noisy shared machines — the
//! minimum is the run least disturbed by the scheduler, which is what a
//! throughput comparison wants.

use std::time::Instant;

/// Wall-clock observations of one benchmark case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchSample {
    /// Fastest observed run, in seconds.
    pub best_seconds: f64,
    /// Mean over all measured runs, in seconds.
    pub mean_seconds: f64,
    /// Number of measured runs.
    pub runs: usize,
}

/// Run `f` once as warm-up and then `runs` measured times; report best and mean
/// wall-clock seconds.
pub fn time_best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> BenchSample {
    assert!(runs >= 1, "need at least one measured run");
    let _warmup = f();
    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..runs {
        let start = Instant::now();
        let _keep = f();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        total += secs;
    }
    BenchSample {
        best_seconds: best,
        mean_seconds: total / runs as f64,
        runs,
    }
}

/// Print one `name  best  mean` line in the format shared by all benches.
pub fn report(name: &str, sample: BenchSample) {
    println!(
        "{name:<44} best {:>9.4}s  mean {:>9.4}s  ({} runs)",
        sample.best_seconds, sample.mean_seconds, sample.runs
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_is_never_above_mean() {
        let sample = time_best_of(5, || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(sample.best_seconds <= sample.mean_seconds + 1e-12);
        assert_eq!(sample.runs, 5);
        assert!(sample.best_seconds >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one measured run")]
    fn zero_runs_panics() {
        let _ = time_best_of(0, || ());
    }
}
